"""Tuning outcome."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.kernels.params import KernelConfig

__all__ = ["TuningResult"]


@dataclass(frozen=True)
class TuningResult:
    """What a tuner found and what it cost."""

    tuner: str
    best_config: KernelConfig
    best_seconds: float
    evaluations: int
    #: Running best time after each new evaluation.
    curve: List[float]

    def __post_init__(self) -> None:
        if self.best_seconds <= 0:
            raise ValueError("best_seconds must be positive")
        if self.evaluations < 1:
            raise ValueError("a result requires at least one evaluation")
        if len(self.curve) != self.evaluations:
            raise ValueError("curve length must equal the evaluation count")

    def evaluations_to_reach(self, seconds: float) -> int:
        """First evaluation index (1-based) at or below ``seconds``; -1 if
        the target was never reached."""
        for i, value in enumerate(self.curve):
            if value <= seconds:
                return i + 1
        return -1

    def __str__(self) -> str:
        return (
            f"{self.tuner}: {self.best_config} at "
            f"{self.best_seconds * 1e6:.1f} us after {self.evaluations} evals"
        )
