"""Evolutionary search: a steady generational GA over the coordinates.

Tournament selection, uniform crossover of the four ordinal genes,
per-gene mutation, elitism of the single best individual — the standard
recipe auto-tuners such as Kernel Tuner offer for large spaces.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.tuning.base import Tuner
from repro.tuning.objective import Objective

__all__ = ["EvolutionaryTuner"]

Coords = Tuple[int, ...]


class EvolutionaryTuner(Tuner):
    name = "evolutionary"

    def __init__(
        self,
        *,
        population: int = 16,
        generations: int = 12,
        mutation_rate: float = 0.25,
        tournament: int = 3,
        random_state=0,
    ):
        super().__init__(random_state=random_state)
        if population < 2:
            raise ValueError("population must be >= 2")
        if generations < 1:
            raise ValueError("generations must be >= 1")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if tournament < 1:
            raise ValueError("tournament must be >= 1")
        self.population = population
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.tournament = tournament

    def _fitness(self, objective, space, individual: Coords) -> float:
        return objective(space.decode(individual))

    def _select(self, rng, scored: List[Tuple[Coords, float]]) -> Coords:
        picks = rng.integers(len(scored), size=self.tournament)
        best = min(picks, key=lambda i: scored[i][1])
        return scored[best][0]

    def _crossover(self, rng, a: Coords, b: Coords) -> Coords:
        return tuple(a[i] if rng.random() < 0.5 else b[i] for i in range(len(a)))

    def _mutate(self, rng, space, individual: Coords) -> Coords:
        coords = list(individual)
        for axis, dim in enumerate(space.dims):
            if rng.random() < self.mutation_rate:
                coords[axis] = int(rng.integers(dim))
        mutated = tuple(coords)
        # Restricted spaces may reject the mutant; fall back to a fresh
        # feasible draw rather than silently keeping the parent.
        if hasattr(space, "_predicate") and space.decode(mutated) not in space:
            return space.random_coords(rng)
        return mutated

    def _search(self, objective: Objective, space, rng: np.random.Generator):
        population = [space.random_coords(rng) for _ in range(self.population)]
        scored = [
            (ind, self._fitness(objective, space, ind)) for ind in population
        ]
        for _ in range(self.generations):
            scored.sort(key=lambda pair: pair[1])
            elite = scored[0]
            children: List[Tuple[Coords, float]] = [elite]
            while len(children) < self.population:
                mother = self._select(rng, scored)
                father = self._select(rng, scored)
                child = self._mutate(
                    rng, space, self._crossover(rng, mother, father)
                )
                children.append(
                    (child, self._fitness(objective, space, child))
                )
            scored = children
