"""Tuner protocol and shared helpers."""

from __future__ import annotations

import abc

import numpy as np

from repro.tuning.objective import Objective, TuningBudgetExceeded
from repro.tuning.result import TuningResult
from repro.tuning.space import ConfigSpace
from repro.utils.rng import rng_from

__all__ = ["Tuner"]


class Tuner(abc.ABC):
    """A search strategy minimising an :class:`Objective` over a space."""

    name: str = "tuner"

    def __init__(self, *, random_state=0):
        self.random_state = random_state

    def tune(self, objective: Objective, space) -> TuningResult:
        """Run the search until its own stopping rule or the budget ends.

        Budget exhaustion is normal termination, not an error: the tuner
        reports the best point found within the allowance.
        """
        rng = rng_from(self.random_state)
        try:
            self._search(objective, space, rng)
        except TuningBudgetExceeded:
            pass
        best_config, best_seconds = objective.best()
        return TuningResult(
            tuner=self.name,
            best_config=best_config,
            best_seconds=best_seconds,
            evaluations=objective.evaluations,
            curve=objective.best_so_far_curve(),
        )

    @abc.abstractmethod
    def _search(
        self,
        objective: Objective,
        space: ConfigSpace,
        rng: np.random.Generator,
    ) -> None:
        """Strategy body; evaluate via ``objective(space.decode(coords))``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(random_state={self.random_state!r})"
