"""Greedy hill climbing with random restarts.

From a random point, move to the best improving ordinal neighbour until
none improves; restart somewhere else.  Cheap and surprisingly strong on
kernel-parameter landscapes, whose axes (tile sizes, work-group shapes)
are individually close to monotone-then-cliff.
"""

from __future__ import annotations

import numpy as np

from repro.tuning.base import Tuner
from repro.tuning.objective import Objective

__all__ = ["HillClimbingTuner"]


class HillClimbingTuner(Tuner):
    name = "hill-climbing"

    def __init__(self, *, restarts: int = 8, random_state=0):
        super().__init__(random_state=random_state)
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        self.restarts = restarts

    def _search(self, objective: Objective, space, rng: np.random.Generator):
        for _ in range(self.restarts):
            coords = space.random_coords(rng)
            current = objective(space.decode(coords))
            while True:
                best_neighbor = None
                best_value = current
                for nb in space.neighbors(coords):
                    value = objective(space.decode(nb))
                    if value < best_value:
                        best_value = value
                        best_neighbor = nb
                if best_neighbor is None:
                    break  # local optimum
                coords, current = best_neighbor, best_value
