"""Simulated annealing over the ordinal configuration space.

Metropolis acceptance on *relative* time differences (kernel times span
orders of magnitude across the space, so absolute deltas would make the
temperature scale shape-dependent) with geometric cooling.
"""

from __future__ import annotations

import numpy as np

from repro.tuning.base import Tuner
from repro.tuning.objective import Objective

__all__ = ["SimulatedAnnealingTuner"]


class SimulatedAnnealingTuner(Tuner):
    name = "annealing"

    def __init__(
        self,
        *,
        steps: int = 200,
        initial_temperature: float = 0.5,
        cooling: float = 0.97,
        random_state=0,
    ):
        super().__init__(random_state=random_state)
        if steps < 1:
            raise ValueError("steps must be >= 1")
        if initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        self.steps = steps
        self.initial_temperature = initial_temperature
        self.cooling = cooling

    def _search(self, objective: Objective, space, rng: np.random.Generator):
        coords = space.random_coords(rng)
        current = objective(space.decode(coords))
        temperature = self.initial_temperature
        for _ in range(self.steps):
            neighbors = list(space.neighbors(coords))
            if not neighbors:
                coords = space.random_coords(rng)
                current = objective(space.decode(coords))
                continue
            candidate = neighbors[int(rng.integers(len(neighbors)))]
            value = objective(space.decode(candidate))
            # Relative degradation: 0 for an improvement.
            delta = max(0.0, (value - current) / current)
            if delta == 0.0 or rng.random() < np.exp(-delta / temperature):
                coords, current = candidate, value
            temperature *= self.cooling
