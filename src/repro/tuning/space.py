"""The search space: kernel configurations as integer coordinate vectors.

Each of the five parameters (acc, rows, cols index into the tile sizes;
the work-group shape indexes its list) becomes one ordinal dimension, so
"neighbouring" configurations differ by one step in one parameter — the
locality that hill climbing, annealing and basin hopping exploit, and the
gene representation the evolutionary tuner crosses over.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.kernels.params import (
    KernelConfig,
    TILE_SIZES,
    WORK_GROUP_SHAPES,
)

__all__ = ["ConfigSpace"]


class ConfigSpace:
    """Ordinal coordinates over the kernel configuration space.

    A coordinate vector is ``(i_acc, i_rows, i_cols, i_wg)``; the default
    axes reproduce the paper's 640-point space but any subsets (or
    extensions) can be passed — device-filtered spaces come from
    :meth:`restricted_to`.
    """

    def __init__(
        self,
        tile_sizes: Sequence[int] = TILE_SIZES,
        work_groups: Sequence[Tuple[int, int]] = WORK_GROUP_SHAPES,
    ):
        if not tile_sizes or not work_groups:
            raise ValueError("search space axes must be non-empty")
        self._tiles = tuple(tile_sizes)
        self._wgs = tuple(work_groups)
        self._dims = (
            len(self._tiles),
            len(self._tiles),
            len(self._tiles),
            len(self._wgs),
        )

    @property
    def dims(self) -> Tuple[int, int, int, int]:
        return self._dims

    @property
    def size(self) -> int:
        total = 1
        for d in self._dims:
            total *= d
        return total

    # -- coordinate <-> config ------------------------------------------

    def decode(self, coords: Sequence[int]) -> KernelConfig:
        ia, ir, ic, iw = (int(c) for c in coords)
        wg = self._wgs[iw]
        return KernelConfig(
            acc=self._tiles[ia],
            rows=self._tiles[ir],
            cols=self._tiles[ic],
            wg_rows=wg[0],
            wg_cols=wg[1],
        )

    def encode(self, config: KernelConfig) -> Tuple[int, int, int, int]:
        try:
            return (
                self._tiles.index(config.acc),
                self._tiles.index(config.rows),
                self._tiles.index(config.cols),
                self._wgs.index((config.wg_rows, config.wg_cols)),
            )
        except ValueError:
            raise ValueError(f"{config} is not in this search space") from None

    def __contains__(self, config: KernelConfig) -> bool:
        try:
            self.encode(config)
            return True
        except ValueError:
            return False

    def all_configs(self) -> List[KernelConfig]:
        out = []
        for ia in range(self._dims[0]):
            for ir in range(self._dims[1]):
                for ic in range(self._dims[2]):
                    for iw in range(self._dims[3]):
                        out.append(self.decode((ia, ir, ic, iw)))
        return out

    # -- moves -------------------------------------------------------------

    def random_coords(self, rng: np.random.Generator) -> Tuple[int, ...]:
        return tuple(int(rng.integers(d)) for d in self._dims)

    def neighbors(self, coords: Sequence[int]) -> Iterator[Tuple[int, ...]]:
        """All coordinate vectors one ordinal step away."""
        coords = tuple(int(c) for c in coords)
        for axis, dim in enumerate(self._dims):
            for step in (-1, +1):
                value = coords[axis] + step
                if 0 <= value < dim:
                    yield coords[:axis] + (value,) + coords[axis + 1 :]

    def perturb(
        self,
        coords: Sequence[int],
        rng: np.random.Generator,
        *,
        strength: int = 2,
    ) -> Tuple[int, ...]:
        """A random jump: ``strength`` axes re-drawn uniformly.

        Basin hopping's "hop" move — large enough to escape a local
        basin, small enough to stay correlated with the current point.
        """
        coords = list(int(c) for c in coords)
        axes = rng.choice(4, size=min(strength, 4), replace=False)
        for axis in axes:
            coords[axis] = int(rng.integers(self._dims[axis]))
        return tuple(coords)

    # -- device filtering -----------------------------------------------

    def restricted_to(self, predicate) -> "RestrictedSpace":
        """A view of this space containing only configs passing ``predicate``.

        Used to search only configurations a device can actually launch.
        """
        return RestrictedSpace(self, predicate)


class RestrictedSpace:
    """A predicate-filtered view of a :class:`ConfigSpace`."""

    def __init__(self, base: ConfigSpace, predicate):
        self._base = base
        self._predicate = predicate
        if not any(predicate(c) for c in base.all_configs()):
            raise ValueError("predicate rejects every configuration")

    @property
    def dims(self):
        return self._base.dims

    @property
    def size(self) -> int:
        return sum(1 for c in self._base.all_configs() if self._predicate(c))

    def decode(self, coords):
        return self._base.decode(coords)

    def encode(self, config):
        return self._base.encode(config)

    def __contains__(self, config) -> bool:
        return config in self._base and self._predicate(config)

    def all_configs(self):
        return [c for c in self._base.all_configs() if self._predicate(c)]

    def random_coords(self, rng):
        for _ in range(10_000):
            coords = self._base.random_coords(rng)
            if self._predicate(self._base.decode(coords)):
                return coords
        raise RuntimeError("could not sample a feasible configuration")

    def neighbors(self, coords):
        for nb in self._base.neighbors(coords):
            if self._predicate(self._base.decode(nb)):
                yield nb

    def perturb(self, coords, rng, *, strength: int = 2):
        for _ in range(10_000):
            cand = self._base.perturb(coords, rng, strength=strength)
            if self._predicate(self._base.decode(cand)):
                return cand
        raise RuntimeError("could not perturb to a feasible configuration")

    def restricted_to(self, predicate):
        return RestrictedSpace(
            self._base, lambda c: self._predicate(c) and predicate(c)
        )
