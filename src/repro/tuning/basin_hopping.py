"""Basin hopping: local descent chained through random perturbations.

The structure the paper names explicitly.  Each iteration perturbs the
incumbent (re-drawing a couple of axes), runs greedy descent to the
bottom of the new basin, and keeps the result if it improved.
"""

from __future__ import annotations

import numpy as np

from repro.tuning.base import Tuner
from repro.tuning.objective import Objective

__all__ = ["BasinHoppingTuner"]


class BasinHoppingTuner(Tuner):
    name = "basin-hopping"

    def __init__(
        self,
        *,
        hops: int = 10,
        perturbation_strength: int = 2,
        random_state=0,
    ):
        super().__init__(random_state=random_state)
        if hops < 1:
            raise ValueError("hops must be >= 1")
        if not 1 <= perturbation_strength <= 4:
            raise ValueError("perturbation_strength must be in [1, 4]")
        self.hops = hops
        self.perturbation_strength = perturbation_strength

    def _descend(self, objective, space, coords):
        current = objective(space.decode(coords))
        while True:
            best_neighbor, best_value = None, current
            for nb in space.neighbors(coords):
                value = objective(space.decode(nb))
                if value < best_value:
                    best_neighbor, best_value = nb, value
            if best_neighbor is None:
                return coords, current
            coords, current = best_neighbor, best_value

    def _search(self, objective: Objective, space, rng: np.random.Generator):
        coords, current = self._descend(
            objective, space, space.random_coords(rng)
        )
        for _ in range(self.hops):
            start = space.perturb(
                coords, rng, strength=self.perturbation_strength
            )
            candidate, value = self._descend(objective, space, start)
            if value < current:
                coords, current = candidate, value
