"""Random search: the baseline every smarter tuner must beat."""

from __future__ import annotations

import numpy as np

from repro.tuning.base import Tuner
from repro.tuning.objective import Objective

__all__ = ["RandomSearchTuner"]


class RandomSearchTuner(Tuner):
    """Uniform sampling without replacement semantics via the cache.

    Runs until the objective budget is exhausted (or ``max_samples``
    draws, whichever first).  Because the objective caches, re-drawn
    points cost nothing — with a finite space this converges to
    exhaustive search in the limit.
    """

    name = "random"

    def __init__(self, *, max_samples: int = 10_000, random_state=0):
        super().__init__(random_state=random_state)
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.max_samples = max_samples

    def _search(self, objective: Objective, space, rng: np.random.Generator):
        for _ in range(self.max_samples):
            objective(space.decode(space.random_coords(rng)))
