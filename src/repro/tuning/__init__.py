"""Kernel parameter search: the auto-tuning side of the paper.

The case study brute-forces all 640 configurations, but the paper is
explicit that this "is not feasible for more general kernels that have
significantly more parameters", pointing at "more complex tuning
algorithms ... such as basin hopping and evolutionary algorithms" (its
Kernel Tuner discussion) and listing smarter search as future work.  This
package implements those strategies over the kernel configuration space:

* :class:`~repro.tuning.random_search.RandomSearchTuner` — the baseline;
* :class:`~repro.tuning.hill_climbing.HillClimbingTuner` — greedy
  neighbourhood descent with random restarts;
* :class:`~repro.tuning.annealing.SimulatedAnnealingTuner` — Metropolis
  acceptance with a geometric cooling schedule;
* :class:`~repro.tuning.basin_hopping.BasinHoppingTuner` — local descent
  chained through random perturbations;
* :class:`~repro.tuning.evolutionary.EvolutionaryTuner` — a genetic
  algorithm with tournament selection, uniform crossover and mutation.

All tuners minimise kernel time for one GEMM shape through a shared
:class:`~repro.tuning.objective.Objective` that counts and caches
evaluations — the comparison metric is *quality reached per benchmark
performed*, exactly what matters when each evaluation is a real kernel
timing run.
"""

from repro.tuning.space import ConfigSpace
from repro.tuning.objective import Objective, TuningBudgetExceeded
from repro.tuning.result import TuningResult
from repro.tuning.base import Tuner
from repro.tuning.random_search import RandomSearchTuner
from repro.tuning.hill_climbing import HillClimbingTuner
from repro.tuning.annealing import SimulatedAnnealingTuner
from repro.tuning.basin_hopping import BasinHoppingTuner
from repro.tuning.evolutionary import EvolutionaryTuner

__all__ = [
    "BasinHoppingTuner",
    "ConfigSpace",
    "EvolutionaryTuner",
    "HillClimbingTuner",
    "Objective",
    "RandomSearchTuner",
    "SimulatedAnnealingTuner",
    "Tuner",
    "TuningBudgetExceeded",
    "TuningResult",
]
