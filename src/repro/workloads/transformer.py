"""Transformer shape families: attention and MLP projections as GEMMs.

The paper's dataset is three 2020-era CNNs; transformer inference is
the workload that has since come to dominate ML serving, and its GEMM
population is structurally different — token counts replace pixel
grids, attention emits *batched small* GEMMs (one per head), and
incremental decoding degenerates the query side to single rows
(GEMV-like shapes).  Per encoder layer at batch ``B`` and sequence
``S`` with model width ``d``, heads ``h`` and FFN width ``f``:

* **projections** — Q/K/V/output each ``[B*S x d x d]``;
* **attention scores** ``QK^T`` — ``[S x d/h x S]`` batched ``B*h``;
* **attention context** ``AV`` — ``[S x S x d/h]`` batched ``B*h``;
* **MLP** — ``[B*S x d x f]`` up and ``[B*S x f x d]`` down;
* **decode step** — the same operators with a one-token query against
  an ``S``-token KV cache: ``m = B`` projections and ``m = 1`` batched
  attention rows.

All of it lowers to the same :class:`~repro.workloads.gemm.GemmShape`
vocabulary, with provenance via :class:`~repro.workloads.lowering.LoweredGemm`,
so the dataset/selection stack ingests transformers exactly like the
CNNs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.workloads.gemm import GemmShape
from repro.workloads.lowering import LoweredGemm

__all__ = ["TransformerSpec", "lower_transformer", "transformer_base"]


@dataclass(frozen=True)
class TransformerSpec:
    """Architecture of one transformer encoder/decoder stack."""

    name: str
    d_model: int
    n_heads: int
    d_ff: int
    seq_lengths: Tuple[int, ...]

    def __post_init__(self) -> None:
        for field in ("d_model", "n_heads", "d_ff"):
            if getattr(self, field) <= 0:
                raise ValueError(f"TransformerSpec.{field} must be positive")
        if self.d_model % self.n_heads != 0:
            raise ValueError(
                f"d_model ({self.d_model}) must be divisible by "
                f"n_heads ({self.n_heads})"
            )
        if not self.seq_lengths or any(s <= 0 for s in self.seq_lengths):
            raise ValueError(
                f"seq_lengths must be positive, got {self.seq_lengths!r}"
            )

    @property
    def d_head(self) -> int:
        return self.d_model // self.n_heads


def transformer_base() -> TransformerSpec:
    """The "base" configuration of the original transformer paper."""
    return TransformerSpec(
        name="transformer",
        d_model=512,
        n_heads=8,
        d_ff=2048,
        seq_lengths=(64, 128, 256),
    )


def _gemm(
    spec: TransformerSpec,
    *,
    m: int,
    k: int,
    n: int,
    gemm_batch: int,
    layer: str,
    transform: str,
    image_batch: int,
) -> LoweredGemm:
    return LoweredGemm(
        shape=GemmShape(m=m, k=k, n=n, batch=gemm_batch),
        network=spec.name,
        layer=layer,
        transform=transform,
        image_batch=image_batch,
    )


def lower_transformer(
    spec: TransformerSpec, *, batches: Sequence[int] = (1,)
) -> List[LoweredGemm]:
    """Lower one transformer layer's GEMMs for each batch and sequence.

    Shapes repeat identically across a stack's layers, so one layer's
    worth per (batch, sequence) pair covers the whole network after
    deduplication — mirroring how the CNN extraction collapses repeated
    blocks.  Both the full-sequence (prefill) and one-token (decode)
    operator sets are emitted.
    """
    if not batches or any(b <= 0 for b in batches):
        raise ValueError(f"batches must be positive, got {batches!r}")
    d, f, h, dh = spec.d_model, spec.d_ff, spec.n_heads, spec.d_head
    out: List[LoweredGemm] = []
    for batch in batches:
        for seq in spec.seq_lengths:
            tokens = batch * seq
            suffix = f"s{seq}"
            for proj in ("q", "k", "v", "out"):
                out.append(
                    _gemm(
                        spec,
                        m=tokens, k=d, n=d, gemm_batch=1,
                        layer=f"attn.{proj}_proj@{suffix}",
                        transform="attn-proj",
                        image_batch=batch,
                    )
                )
            out.append(
                _gemm(
                    spec,
                    m=seq, k=dh, n=seq, gemm_batch=batch * h,
                    layer=f"attn.scores@{suffix}",
                    transform="attn-qkt",
                    image_batch=batch,
                )
            )
            out.append(
                _gemm(
                    spec,
                    m=seq, k=seq, n=dh, gemm_batch=batch * h,
                    layer=f"attn.context@{suffix}",
                    transform="attn-av",
                    image_batch=batch,
                )
            )
            out.append(
                _gemm(
                    spec,
                    m=tokens, k=d, n=f, gemm_batch=1,
                    layer=f"mlp.up@{suffix}",
                    transform="mlp",
                    image_batch=batch,
                )
            )
            out.append(
                _gemm(
                    spec,
                    m=tokens, k=f, n=d, gemm_batch=1,
                    layer=f"mlp.down@{suffix}",
                    transform="mlp",
                    image_batch=batch,
                )
            )
            # Incremental decoding: a one-token query against the
            # seq-token KV cache.  At batch 1 the projections are true
            # GEMVs (m == 1) and the attention rows are batched
            # single-row GEMMs.
            out.append(
                _gemm(
                    spec,
                    m=batch, k=d, n=d, gemm_batch=1,
                    layer=f"decode.proj@{suffix}",
                    transform="attn-proj-decode",
                    image_batch=batch,
                )
            )
            out.append(
                _gemm(
                    spec,
                    m=1, k=dh, n=seq, gemm_batch=batch * h,
                    layer=f"decode.scores@{suffix}",
                    transform="attn-qkt-decode",
                    image_batch=batch,
                )
            )
            out.append(
                _gemm(
                    spec,
                    m=1, k=seq, n=dh, gemm_batch=batch * h,
                    layer=f"decode.context@{suffix}",
                    transform="attn-av-decode",
                    image_batch=batch,
                )
            )
    return out
