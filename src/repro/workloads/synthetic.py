"""Synthetic GEMM shapes: growing the dataset beyond three networks.

The paper's conclusions: "The datasets used in this paper are fairly
small, causing the models to fail to generalize[,] which would be
mitigated with larger datasets."  This module fabricates additional
training shapes by sampling the space real network GEMMs occupy —
log-uniform in each dimension within the envelope of the extracted
shapes, plus the characteristic structural families (batch-1 FC rows,
Winograd batch multiplicities).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import rng_from
from repro.workloads.gemm import GemmShape

__all__ = ["random_gemm_shapes", "shape_envelope"]

#: The batch multiplicities real lowering produces (single GEMM,
#: Winograd F(2,3) and F(4,3) transform counts).
_BATCH_CHOICES = (1, 1, 1, 16, 36)


def shape_envelope(
    shapes: Sequence[GemmShape],
) -> Tuple[Tuple[int, int], Tuple[int, int], Tuple[int, int]]:
    """(min, max) ranges of m, k, n over an existing shape list."""
    if not shapes:
        raise ValueError("cannot take the envelope of zero shapes")
    ms = [s.m for s in shapes]
    ks = [s.k for s in shapes]
    ns = [s.n for s in shapes]
    return (min(ms), max(ms)), (min(ks), max(ks)), (min(ns), max(ns))


def random_gemm_shapes(
    n: int,
    *,
    random_state=0,
    envelope: Optional[Tuple[Tuple[int, int], ...]] = None,
    fc_fraction: float = 0.15,
) -> List[GemmShape]:
    """Sample ``n`` distinct synthetic GEMM shapes.

    Dimensions are log-uniform inside ``envelope`` (defaults to the span
    of real network GEMMs); a ``fc_fraction`` of samples mimic batch-1
    fully connected layers (m in {1..64}, large k), the family whose
    optima differ most from convolutions.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0.0 <= fc_fraction <= 1.0:
        raise ValueError("fc_fraction must be in [0, 1]")
    if envelope is None:
        envelope = ((1, 802_816), (3, 25_088), (16, 4_096))
    rng = rng_from(random_state)

    def log_uniform(lo: int, hi: int) -> int:
        return int(round(np.exp(rng.uniform(np.log(lo), np.log(hi)))))

    out: List[GemmShape] = []
    seen = set()
    while len(out) < n:
        if rng.random() < fc_fraction:
            m = int(rng.integers(1, 65))
            k = log_uniform(max(256, envelope[1][0]), envelope[1][1])
            n_dim = log_uniform(max(100, envelope[2][0]), envelope[2][1])
            batch = 1
        else:
            m = log_uniform(*envelope[0])
            k = log_uniform(*envelope[1])
            n_dim = log_uniform(*envelope[2])
            batch = int(rng.choice(_BATCH_CHOICES))
        shape = GemmShape(m=m, k=k, n=n_dim, batch=batch)
        key = shape.as_tuple()
        if key not in seen:
            seen.add(key)
            out.append(shape)
    return out
