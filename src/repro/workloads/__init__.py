"""Neural-network workloads and their lowering to GEMM shapes.

The paper's dataset consists of the matrix-multiply sizes arising from
VGG, ResNet and MobileNet: convolutions lowered through im2col or Winograd
transforms and fully-connected layers.  This package defines the network
architectures at layer granularity, the lowering passes, and the extraction
step that produces deduplicated per-network GEMM shape sets.
"""

from repro.workloads.gemm import GemmShape
from repro.workloads.layers import Conv2d, Dense, GlobalPool, InputSpec, Pool2d
from repro.workloads.lowering import (
    LoweredGemm,
    lower_conv_im2col,
    lower_conv_winograd,
    lower_dense,
    lower_network,
)
from repro.workloads.extract import (
    KNOWN_NETWORKS,
    NetworkShapeSet,
    extract_dataset_shapes,
    extract_network_shapes,
)
from repro.workloads.networks import mobilenet_v2, resnet50, vgg16
from repro.workloads.placement import (
    DataPlacement,
    PlacedGemmShape,
    place_shapes,
)
from repro.workloads.sparse import SparseGemmShape, sparsify
from repro.workloads.synthetic import random_gemm_shapes, shape_envelope
from repro.workloads.transformer import (
    TransformerSpec,
    lower_transformer,
    transformer_base,
)

__all__ = [
    "Conv2d",
    "DataPlacement",
    "Dense",
    "GemmShape",
    "GlobalPool",
    "InputSpec",
    "KNOWN_NETWORKS",
    "LoweredGemm",
    "NetworkShapeSet",
    "PlacedGemmShape",
    "Pool2d",
    "SparseGemmShape",
    "TransformerSpec",
    "extract_dataset_shapes",
    "extract_network_shapes",
    "lower_conv_im2col",
    "lower_conv_winograd",
    "lower_dense",
    "lower_network",
    "lower_transformer",
    "mobilenet_v2",
    "place_shapes",
    "random_gemm_shapes",
    "resnet50",
    "shape_envelope",
    "sparsify",
    "transformer_base",
    "vgg16",
]
