"""Extraction of the deduplicated per-network GEMM shape sets.

This regenerates the paper's dataset inputs: "the sizes of matrix
multiplies arising from three popular neural networks: VGG, ResNet and
MobileNet, giving 78, 66 and 26 combinations of matrix sizes".  Our counts
differ (we derive shapes from the published architectures rather than the
authors' unavailable shape list) but are of the same order; EXPERIMENTS.md
records the actual numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.workloads.gemm import GemmShape
from repro.workloads.lowering import LoweredGemm, lower_network
from repro.workloads.networks import mobilenet_v2, resnet50, vgg16
from repro.workloads.networks.base import Network
from repro.workloads.transformer import (
    TransformerSpec,
    lower_transformer,
    transformer_base,
)

__all__ = [
    "DEFAULT_BATCHES",
    "KNOWN_NETWORKS",
    "NetworkShapeSet",
    "extract_dataset_shapes",
    "extract_network_shapes",
]

#: Image batch sizes benchmarked per network.  VGG/ResNet training-era
#: models are commonly profiled over several batches; MobileNet targets
#: single-image embedded inference, which also keeps the relative set
#: sizes ordered like the paper's (VGG > ResNet > MobileNet).
DEFAULT_BATCHES: Dict[str, Tuple[int, ...]] = {
    "vgg16": (1, 4, 16),
    "resnet50": (1, 4),
    "mobilenet_v2": (1,),
    "transformer": (1, 4),
}

_BUILDERS: Dict[str, Callable[[], Network]] = {
    "vgg16": vgg16,
    "resnet50": resnet50,
    "mobilenet_v2": mobilenet_v2,
}

#: Networks lowered straight from an architecture spec rather than the
#: Conv2d/Dense layer tracer (transformers have no image pipeline).
_SPEC_BUILDERS: Dict[str, Callable[[], TransformerSpec]] = {
    "transformer": transformer_base,
}

KNOWN_NETWORKS: Tuple[str, ...] = tuple(
    sorted({**_BUILDERS, **_SPEC_BUILDERS})
)


@dataclass(frozen=True)
class NetworkShapeSet:
    """Deduplicated GEMM shapes of one network, with provenance."""

    network: str
    shapes: Tuple[GemmShape, ...]
    #: All lowered instances (pre-dedup), for provenance queries.
    instances: Tuple[LoweredGemm, ...]

    def __len__(self) -> int:
        return len(self.shapes)

    def provenance(self, shape: GemmShape) -> List[LoweredGemm]:
        """All layer instances that lower to ``shape``."""
        return [lg for lg in self.instances if lg.shape == shape]


def extract_network_shapes(
    name: str,
    *,
    batches: Sequence[int] | None = None,
    winograd_tiles: Sequence[int] = (2, 4),
) -> NetworkShapeSet:
    """Lower one network and deduplicate its GEMM shapes.

    Shapes are deduplicated on the full ``(m, k, n, batch)`` tuple and
    returned in deterministic sorted order.
    """
    if batches is None:
        batches = DEFAULT_BATCHES.get(name, (1,))
    if name in _SPEC_BUILDERS:
        instances = lower_transformer(_SPEC_BUILDERS[name](), batches=batches)
    elif name in _BUILDERS:
        instances = lower_network(
            _BUILDERS[name](), batches=batches, winograd_tiles=winograd_tiles
        )
    else:
        raise ValueError(
            f"unknown network {name!r}; known: {list(KNOWN_NETWORKS)}"
        )
    unique = tuple(sorted({lg.shape for lg in instances}))
    return NetworkShapeSet(network=name, shapes=unique, instances=tuple(instances))


def extract_dataset_shapes(
    *,
    networks: Sequence[str] = ("vgg16", "resnet50", "mobilenet_v2"),
    batches: Dict[str, Sequence[int]] | None = None,
    winograd_tiles: Sequence[int] = (2, 4),
) -> Tuple[List[GemmShape], Dict[str, NetworkShapeSet]]:
    """Extract the combined, deduplicated dataset shape list.

    Returns the sorted union of per-network shape sets (the paper's "170
    combinations total" step: per-network counts overlap slightly) plus
    the per-network sets for reporting.
    """
    per_network: Dict[str, NetworkShapeSet] = {}
    union = set()
    for name in networks:
        shape_set = extract_network_shapes(
            name,
            batches=None if batches is None else batches.get(name),
            winograd_tiles=winograd_tiles,
        )
        per_network[name] = shape_set
        union.update(shape_set.shapes)
    return sorted(union), per_network
