"""Extraction of the deduplicated per-network GEMM shape sets.

This regenerates the paper's dataset inputs: "the sizes of matrix
multiplies arising from three popular neural networks: VGG, ResNet and
MobileNet, giving 78, 66 and 26 combinations of matrix sizes".  Our counts
differ (we derive shapes from the published architectures rather than the
authors' unavailable shape list) but are of the same order; EXPERIMENTS.md
records the actual numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.workloads.gemm import GemmShape
from repro.workloads.lowering import LoweredGemm, lower_network
from repro.workloads.networks import mobilenet_v2, resnet50, vgg16
from repro.workloads.networks.base import Network

__all__ = [
    "DEFAULT_BATCHES",
    "NetworkShapeSet",
    "extract_dataset_shapes",
    "extract_network_shapes",
]

#: Image batch sizes benchmarked per network.  VGG/ResNet training-era
#: models are commonly profiled over several batches; MobileNet targets
#: single-image embedded inference, which also keeps the relative set
#: sizes ordered like the paper's (VGG > ResNet > MobileNet).
DEFAULT_BATCHES: Dict[str, Tuple[int, ...]] = {
    "vgg16": (1, 4, 16),
    "resnet50": (1, 4),
    "mobilenet_v2": (1,),
}

_BUILDERS: Dict[str, Callable[[], Network]] = {
    "vgg16": vgg16,
    "resnet50": resnet50,
    "mobilenet_v2": mobilenet_v2,
}


@dataclass(frozen=True)
class NetworkShapeSet:
    """Deduplicated GEMM shapes of one network, with provenance."""

    network: str
    shapes: Tuple[GemmShape, ...]
    #: All lowered instances (pre-dedup), for provenance queries.
    instances: Tuple[LoweredGemm, ...]

    def __len__(self) -> int:
        return len(self.shapes)

    def provenance(self, shape: GemmShape) -> List[LoweredGemm]:
        """All layer instances that lower to ``shape``."""
        return [lg for lg in self.instances if lg.shape == shape]


def extract_network_shapes(
    name: str,
    *,
    batches: Sequence[int] | None = None,
    winograd_tiles: Sequence[int] = (2, 4),
) -> NetworkShapeSet:
    """Lower one network and deduplicate its GEMM shapes.

    Shapes are deduplicated on the full ``(m, k, n, batch)`` tuple and
    returned in deterministic sorted order.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown network {name!r}; known: {sorted(_BUILDERS)}"
        ) from None
    if batches is None:
        batches = DEFAULT_BATCHES[name]
    instances = lower_network(
        builder(), batches=batches, winograd_tiles=winograd_tiles
    )
    unique = tuple(sorted({lg.shape for lg in instances}))
    return NetworkShapeSet(network=name, shapes=unique, instances=tuple(instances))


def extract_dataset_shapes(
    *,
    networks: Sequence[str] = ("vgg16", "resnet50", "mobilenet_v2"),
    batches: Dict[str, Sequence[int]] | None = None,
    winograd_tiles: Sequence[int] = (2, 4),
) -> Tuple[List[GemmShape], Dict[str, NetworkShapeSet]]:
    """Extract the combined, deduplicated dataset shape list.

    Returns the sorted union of per-network shape sets (the paper's "170
    combinations total" step: per-network counts overlap slightly) plus
    the per-network sets for reporting.
    """
    per_network: Dict[str, NetworkShapeSet] = {}
    union = set()
    for name in networks:
        shape_set = extract_network_shapes(
            name,
            batches=None if batches is None else batches.get(name),
            winograd_tiles=winograd_tiles,
        )
        per_network[name] = shape_set
        union.update(shape_set.shapes)
    return sorted(union), per_network
