"""Data placement: where a GEMM's operands live before the launch.

The paper benchmarks device-resident operands — the kernel's inputs are
already in GPU memory when the timer starts.  Real serving traffic is
not that tidy: activations produced by a host-side pipeline must cross
the interconnect before the kernel can run, and the result must come
back.  Once those transfer phases are modelled
(:mod:`repro.perfmodel.transfer`), the best kernel configuration
legitimately *changes* with placement — large macro-tiles pad their
operand transfers to tile boundaries, so a config that wins on-device
can lose end-to-end.

:class:`PlacedGemmShape` extends the dense shape with the placement so
selectors can condition on it, exactly as :class:`SparseGemmShape` does
for density.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.workloads.gemm import GemmShape

__all__ = ["DataPlacement", "PlacedGemmShape", "place_shapes"]


class DataPlacement(str, Enum):
    """Where the operands of a GEMM live when it is enqueued.

    ``DEVICE`` — operands already resident in device memory (the
    paper's benchmark protocol); kernel time is end-to-end time.
    ``HOST`` — operands start in host memory: H2D copies precede the
    kernel and a D2H copy returns C, with partial overlap.
    """

    DEVICE = "device"
    HOST = "host"

    @classmethod
    def parse(cls, value: Union["DataPlacement", str]) -> "DataPlacement":
        """Normalise a placement-ish value, rejecting unknown spellings."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(
                f"unknown data placement {value!r}; "
                f"known: {[p.value for p in cls]}"
            ) from None


@dataclass(frozen=True, order=True, slots=True)
class PlacedGemmShape(GemmShape):
    """A GEMM shape annotated with its operand placement."""

    placement: str = DataPlacement.DEVICE.value

    def __post_init__(self) -> None:
        # Explicit base call: dataclass slots=True rebuilds the class,
        # which breaks zero-argument super() in methods defined here.
        GemmShape.__post_init__(self)
        normalized = DataPlacement.parse(self.placement).value
        object.__setattr__(self, "placement", normalized)

    @property
    def host_resident(self) -> bool:
        return self.placement == DataPlacement.HOST.value

    def features(self) -> np.ndarray:
        """Five features: the dense four plus a host-placement indicator.

        A selector trained with this feature space can condition on
        placement; the flip experiment compares it against
        placement-blind selection.
        """
        return np.array(
            [self.m, self.k, self.n, self.batch, float(self.host_resident)],
            dtype=np.float64,
        )

    N_FEATURES = 5
    FEATURE_NAMES = ("m", "k", "n", "batch", "host_placed")

    def as_tuple(self) -> Tuple[int, int, int, int, int]:
        return (self.m, self.k, self.n, self.batch, int(self.host_resident))

    def unplaced(self) -> GemmShape:
        """The same dimensions without the placement annotation."""
        return GemmShape(m=self.m, k=self.k, n=self.n, batch=self.batch)

    def __str__(self) -> str:
        base = GemmShape.__str__(self)  # zero-arg super() breaks under slots
        if self.host_resident:
            return f"{base}@host"
        return base


def place_shapes(
    shapes: Sequence[GemmShape],
    placements: Sequence[Union[DataPlacement, str]] = (
        DataPlacement.DEVICE,
        DataPlacement.HOST,
    ),
) -> List[PlacedGemmShape]:
    """Cross a dense shape list with operand placements.

    Models mixed serving traffic where the same layer shape arrives both
    from a device-resident pipeline and from host-staged inputs; the
    device rows keep the on-device baseline in-distribution.
    """
    if not placements:
        raise ValueError("at least one placement is required")
    out: List[PlacedGemmShape] = []
    for placement in placements:
        value = DataPlacement.parse(placement).value
        for shape in shapes:
            out.append(
                PlacedGemmShape(
                    m=shape.m,
                    k=shape.k,
                    n=shape.n,
                    batch=shape.batch,
                    placement=value,
                )
            )
    return sorted(set(out))
