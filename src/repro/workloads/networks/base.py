"""Network container and a small tracer for building architectures.

Networks are stored as a flat list of layer *instances* — (layer, input
spec, output spec) triples — which is exactly what conv→GEMM lowering
needs.  Branching topologies (ResNet) are handled by the builders saving
and restoring the tracer's current spec; element-wise merges do not change
shapes and carry no GEMM work, so they need no explicit representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from repro.workloads.layers import Conv2d, Dense, GlobalPool, InputSpec, Pool2d

__all__ = ["LayerInstance", "Network", "Tracer"]

Layer = Union[Conv2d, Dense, GlobalPool, Pool2d]


@dataclass(frozen=True)
class LayerInstance:
    """A layer placed at a concrete point in a network."""

    name: str
    layer: Layer
    input: InputSpec
    output: InputSpec


@dataclass(frozen=True)
class Network:
    """A named, shape-resolved architecture."""

    name: str
    input: InputSpec
    layers: List[LayerInstance]

    def convs(self) -> List[LayerInstance]:
        return [li for li in self.layers if isinstance(li.layer, Conv2d)]

    def denses(self) -> List[LayerInstance]:
        return [li for li in self.layers if isinstance(li.layer, Dense)]

    def __len__(self) -> int:
        return len(self.layers)


class Tracer:
    """Threads an :class:`InputSpec` through successive layers."""

    def __init__(self, input_spec: InputSpec):
        self._spec = input_spec
        self._layers: List[LayerInstance] = []
        self._counter = 0

    @property
    def spec(self) -> InputSpec:
        """Current activation shape."""
        return self._spec

    @spec.setter
    def spec(self, value: InputSpec) -> None:
        self._spec = value

    def add(self, layer: Layer, name: str = "") -> InputSpec:
        """Append a layer at the current spec and advance it."""
        self._counter += 1
        name = name or layer.name or f"{type(layer).__name__.lower()}{self._counter}"
        out = layer.output(self._spec)
        self._layers.append(
            LayerInstance(name=name, layer=layer, input=self._spec, output=out)
        )
        self._spec = out
        return out

    def branch(self) -> InputSpec:
        """Snapshot the current spec for a side branch."""
        return self._spec

    def finish(self, network_name: str, input_spec: InputSpec) -> Network:
        return Network(name=network_name, input=input_spec, layers=list(self._layers))
