"""MobileNetV2 (Sandler et al. 2018).

Inverted residual blocks: 1x1 expansion, 3x3 depthwise, 1x1 projection.
Depthwise convolutions are kept in the network description (they matter
for shape inference) but the lowering pass skips them — they contain no
channel reduction and are not computed through GEMM in SYCL-DNN.
"""

from __future__ import annotations

from repro.workloads.layers import Conv2d, Dense, GlobalPool, InputSpec
from repro.workloads.networks.base import Network, Tracer

__all__ = ["mobilenet_v2"]

#: (expansion t, output channels c, repeats n, first stride s)
_BLOCKS = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def mobilenet_v2(*, input_size: int = 224) -> Network:
    inp = InputSpec(height=input_size, width=input_size, channels=3)
    t = Tracer(inp)
    t.add(Conv2d(out_channels=32, kernel=3, stride=2, padding=1), name="conv1")

    block_no = 0
    for expansion, out_c, repeats, first_stride in _BLOCKS:
        for rep in range(repeats):
            block_no += 1
            stride = first_stride if rep == 0 else 1
            in_c = t.spec.channels
            hidden = in_c * expansion
            prefix = f"block{block_no}"
            if expansion != 1:
                t.add(
                    Conv2d(out_channels=hidden, kernel=1, stride=1),
                    name=f"{prefix}_expand",
                )
            t.add(
                Conv2d(
                    out_channels=hidden,
                    kernel=3,
                    stride=stride,
                    padding=1,
                    groups=hidden,
                ),
                name=f"{prefix}_depthwise",
            )
            t.add(
                Conv2d(out_channels=out_c, kernel=1, stride=1),
                name=f"{prefix}_project",
            )
    t.add(Conv2d(out_channels=1280, kernel=1, stride=1), name="conv_last")
    t.add(GlobalPool(), name="avgpool")
    t.add(Dense(out_features=1000), name="fc")
    return t.finish("mobilenet_v2", inp)
