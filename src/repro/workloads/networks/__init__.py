"""Architectures of the three networks the paper extracts shapes from."""

from repro.workloads.networks.base import LayerInstance, Network, Tracer
from repro.workloads.networks.vgg import vgg16
from repro.workloads.networks.resnet import resnet50
from repro.workloads.networks.mobilenet import mobilenet_v2

__all__ = [
    "LayerInstance",
    "Network",
    "Tracer",
    "mobilenet_v2",
    "resnet50",
    "vgg16",
]
