"""ResNet-50 (He et al. 2016).

Bottleneck residual blocks: 1x1 reduce, 3x3, 1x1 expand, with a 1x1
projection on the shortcut whenever the spatial size or channel count
changes.  Element-wise additions carry no GEMM work and are omitted.
"""

from __future__ import annotations

from repro.workloads.layers import Conv2d, Dense, GlobalPool, InputSpec, Pool2d
from repro.workloads.networks.base import Network, Tracer

__all__ = ["resnet50"]

#: (mid channels, block count, first-block stride) per stage.
_STAGES = ((64, 3, 1), (128, 4, 2), (256, 6, 2), (512, 3, 2))
_EXPANSION = 4


def resnet50(*, input_size: int = 224) -> Network:
    inp = InputSpec(height=input_size, width=input_size, channels=3)
    t = Tracer(inp)
    t.add(Conv2d(out_channels=64, kernel=7, stride=2, padding=3), name="conv1")
    t.add(Pool2d(kernel=3, stride=2, padding=1), name="pool1")

    for stage_idx, (mid, blocks, first_stride) in enumerate(_STAGES, start=2):
        out_channels = mid * _EXPANSION
        for block_idx in range(1, blocks + 1):
            stride = first_stride if block_idx == 1 else 1
            block_input = t.branch()
            prefix = f"res{stage_idx}{chr(ord('a') + block_idx - 1)}"
            # Shortcut projection when shape changes (first block of stage).
            needs_projection = (
                block_input.channels != out_channels or stride != 1
            )
            if needs_projection:
                shortcut_tracer_spec = t.spec
                t.add(
                    Conv2d(out_channels=out_channels, kernel=1, stride=stride),
                    name=f"{prefix}_shortcut",
                )
                t.spec = shortcut_tracer_spec  # main path starts from block input
            t.add(
                Conv2d(out_channels=mid, kernel=1, stride=1),
                name=f"{prefix}_conv1",
            )
            t.add(
                Conv2d(out_channels=mid, kernel=3, stride=stride, padding=1),
                name=f"{prefix}_conv2",
            )
            t.add(
                Conv2d(out_channels=out_channels, kernel=1, stride=1),
                name=f"{prefix}_conv3",
            )
    t.add(GlobalPool(), name="avgpool")
    t.add(Dense(out_features=1000), name="fc1000")
    return t.finish("resnet50", inp)
