"""VGG16 (Simonyan & Zisserman 2014, configuration D)."""

from __future__ import annotations

from repro.workloads.layers import Conv2d, Dense, InputSpec, Pool2d
from repro.workloads.networks.base import Network, Tracer

__all__ = ["vgg16"]

#: (channels, conv count) per stage of configuration D.
_STAGES = ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3))


def vgg16(*, input_size: int = 224) -> Network:
    """Build VGG16: five conv stages with 2x2 max-pooling, then three FCs."""
    inp = InputSpec(height=input_size, width=input_size, channels=3)
    t = Tracer(inp)
    for stage_idx, (channels, count) in enumerate(_STAGES, start=1):
        for conv_idx in range(1, count + 1):
            t.add(
                Conv2d(out_channels=channels, kernel=3, stride=1, padding=1),
                name=f"conv{stage_idx}_{conv_idx}",
            )
        t.add(Pool2d(kernel=2, stride=2), name=f"pool{stage_idx}")
    t.add(Dense(out_features=4096), name="fc6")
    t.add(Dense(out_features=4096), name="fc7")
    t.add(Dense(out_features=1000), name="fc8")
    return t.finish("vgg16", inp)
