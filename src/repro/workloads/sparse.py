"""Sparse GEMM shapes: the paper's open question, made concrete.

"It is unclear how well the techniques discussed here generalize to
sparse data."  In ML systems the dominant source of sparse GEMMs is
weight pruning: the B operand (the weights) keeps only a fraction
(*density*) of its entries.  :class:`SparseGemmShape` extends the dense
shape with that density, and :func:`sparsify` fabricates pruned-network
workloads from any dense shape list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.workloads.gemm import GemmShape

__all__ = ["SparseGemmShape", "sparsify"]

#: Density is stored as parts-per-million in identity tuples so shapes
#: remain hashable/orderable on integers.
_PPM = 1_000_000


@dataclass(frozen=True, order=True, slots=True)
class SparseGemmShape(GemmShape):
    """A GEMM whose B (weight) operand has the given nonzero density."""

    density: float = 1.0

    def __post_init__(self) -> None:
        # Explicit base call: dataclass slots=True rebuilds the class,
        # which breaks zero-argument super() in methods defined here.
        GemmShape.__post_init__(self)
        if not 0.0 < self.density <= 1.0:
            raise ValueError(
                f"density must be in (0, 1], got {self.density}"
            )

    @property
    def flops(self) -> int:
        """Useful FLOPs: only the nonzero weights multiply."""
        return int(round(2 * self.batch * self.m * self.k * self.n * self.density))

    @property
    def nnz(self) -> int:
        """Nonzero entries in the sparse operand."""
        return int(round(self.k * self.n * self.density))

    def features(self) -> np.ndarray:
        """Five features: the dense four plus density.

        A selector trained with this feature space can condition on
        sparsity; the generalisation experiment compares it against
        density-blind selection.
        """
        return np.array(
            [self.m, self.k, self.n, self.batch, self.density],
            dtype=np.float64,
        )

    N_FEATURES = 5
    FEATURE_NAMES = ("m", "k", "n", "batch", "density")

    def as_tuple(self) -> Tuple[int, int, int, int, int]:
        return (
            self.m,
            self.k,
            self.n,
            self.batch,
            int(round(self.density * _PPM)),
        )

    def dense_equivalent(self) -> GemmShape:
        """The same dimensions as a fully dense problem."""
        return GemmShape(m=self.m, k=self.k, n=self.n, batch=self.batch)

    def __str__(self) -> str:
        base = GemmShape.__str__(self)  # zero-arg super() breaks under slots=True
        if self.density >= 1.0:
            return base
        return f"{base}@{self.density:.0%}"


def sparsify(
    shapes: Sequence[GemmShape],
    densities: Sequence[float] = (1.0, 0.5, 0.25, 0.1),
) -> List[SparseGemmShape]:
    """Cross a dense shape list with pruning densities.

    Models a research workflow sweeping pruning levels over a network's
    layers; density 1.0 keeps the unpruned baseline in-distribution.
    """
    if not densities:
        raise ValueError("at least one density is required")
    out: List[SparseGemmShape] = []
    for density in densities:
        for shape in shapes:
            out.append(
                SparseGemmShape(
                    m=shape.m,
                    k=shape.k,
                    n=shape.n,
                    batch=shape.batch,
                    density=float(density),
                )
            )
    return sorted(set(out))
