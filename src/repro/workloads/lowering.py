"""Lowering neural-network layers to GEMM shapes.

Three lowering routes, matching the paper's description of where matrix
multiplies arise:

* **im2col** — a ``kxk`` convolution over ``C_in`` channels producing
  ``C_out`` maps on an ``H_out x W_out`` grid becomes a single GEMM with
  ``M = B * H_out * W_out``, ``K = k * k * C_in``, ``N = C_out``.
* **Winograd** — an ``F(t x t, 3x3)`` transform turns a stride-1 3x3
  convolution into ``(t+2)^2`` independent GEMMs of
  ``M = B * ceil(H_out/t) * ceil(W_out/t)``, ``K = C_in``, ``N = C_out``
  (a batched GEMM; the batch count is the transformed-tile count).
* **fully connected** — ``M = B``, ``K = in_features``, ``N = out_features``.

Depthwise convolutions have no channel reduction, are not GEMM-backed in
SYCL-DNN, and are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.workloads.gemm import GemmShape
from repro.workloads.layers import Conv2d, Dense, InputSpec
from repro.workloads.networks.base import Network
from repro.utils.maths import ceil_div

__all__ = [
    "LoweredGemm",
    "lower_conv_im2col",
    "lower_conv_winograd",
    "lower_dense",
    "lower_network",
]


@dataclass(frozen=True)
class LoweredGemm:
    """A GEMM shape with provenance back to the layer that produced it."""

    shape: GemmShape
    network: str
    layer: str
    transform: str  # "im2col", "winograd2", "winograd4", "fc"
    image_batch: int


def lower_conv_im2col(
    conv: Conv2d, input_spec: InputSpec, *, batch: int = 1
) -> GemmShape:
    """im2col lowering of a (grouped) convolution.

    Grouped non-depthwise convolutions produce one GEMM per group of the
    same shape; the per-group shape is returned with the group count as
    the GEMM batch.
    """
    if conv.is_depthwise(input_spec):
        raise ValueError("depthwise convolutions are not GEMM-backed")
    out = conv.output(input_spec)
    k = conv.kernel * conv.kernel * (input_spec.channels // conv.groups)
    return GemmShape(
        m=batch * out.height * out.width,
        k=k,
        n=conv.out_channels // conv.groups,
        batch=conv.groups,
    )


def lower_conv_winograd(
    conv: Conv2d,
    input_spec: InputSpec,
    *,
    batch: int = 1,
    tile: int = 2,
) -> Optional[GemmShape]:
    """Winograd ``F(tile x tile, 3x3)`` lowering.

    Returns ``None`` for layers Winograd does not apply to (non-3x3,
    strided, grouped or depthwise convolutions), letting callers iterate
    transforms uniformly.
    """
    if tile not in (2, 4):
        raise ValueError(f"supported Winograd tiles are 2 and 4, got {tile}")
    if conv.kernel != 3 or conv.stride != 1 or conv.groups != 1:
        return None
    out = conv.output(input_spec)
    tiles = ceil_div(out.height, tile) * ceil_div(out.width, tile)
    transformed = (tile + 2) * (tile + 2)
    return GemmShape(
        m=batch * tiles,
        k=input_spec.channels,
        n=conv.out_channels,
        batch=transformed,
    )


def lower_dense(dense: Dense, input_spec: InputSpec, *, batch: int = 1) -> GemmShape:
    """Fully connected layer as a GEMM (plus a bias add the paper ignores)."""
    return GemmShape(m=batch, k=dense.in_features(input_spec), n=dense.out_features)


def lower_network(
    network: Network,
    *,
    batches: Sequence[int] = (1,),
    winograd_tiles: Sequence[int] = (2, 4),
) -> List[LoweredGemm]:
    """Lower every GEMM-backed layer of ``network`` for each image batch.

    Returns the full (non-deduplicated) list with provenance; see
    :mod:`repro.workloads.extract` for the deduplicated dataset view.
    """
    if not batches or any(b <= 0 for b in batches):
        raise ValueError(f"batches must be positive, got {batches!r}")
    out: List[LoweredGemm] = []
    for batch in batches:
        for li in network.layers:
            layer = li.layer
            if isinstance(layer, Conv2d):
                if layer.is_depthwise(li.input):
                    continue
                out.append(
                    LoweredGemm(
                        shape=lower_conv_im2col(layer, li.input, batch=batch),
                        network=network.name,
                        layer=li.name,
                        transform="im2col",
                        image_batch=batch,
                    )
                )
                for tile in winograd_tiles:
                    wshape = lower_conv_winograd(
                        layer, li.input, batch=batch, tile=tile
                    )
                    if wshape is not None:
                        out.append(
                            LoweredGemm(
                                shape=wshape,
                                network=network.name,
                                layer=li.name,
                                transform=f"winograd{tile}",
                                image_batch=batch,
                            )
                        )
            elif isinstance(layer, Dense):
                out.append(
                    LoweredGemm(
                        shape=lower_dense(layer, li.input, batch=batch),
                        network=network.name,
                        layer=li.name,
                        transform="fc",
                        image_batch=batch,
                    )
                )
    return out
