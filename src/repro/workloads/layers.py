"""Layer descriptors with shape inference.

A network is a list of layer descriptors threaded through
:class:`InputSpec` shape inference.  Only the layer types needed to
describe VGG16, ResNet-50 and MobileNetV2 are modelled; each knows how to
compute its output spatial shape so the lowering pass can derive GEMM
sizes without running any tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Conv2d", "Dense", "GlobalPool", "InputSpec", "Pool2d"]


@dataclass(frozen=True)
class InputSpec:
    """Spatial input: height x width x channels."""

    height: int
    width: int
    channels: int

    def __post_init__(self) -> None:
        for name in ("height", "width", "channels"):
            if getattr(self, name) <= 0:
                raise ValueError(f"InputSpec.{name} must be positive")


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output collapsed: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


@dataclass(frozen=True)
class Conv2d:
    """2-D convolution.

    ``groups == in_channels`` marks a depthwise convolution (MobileNet);
    depthwise layers are *not* lowered to GEMM (they have no reduction
    across channels), matching the paper's dataset which only contains
    shapes from GEMM-backed operations.
    """

    out_channels: int
    kernel: int
    stride: int = 1
    padding: int = 0
    groups: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        if self.out_channels <= 0 or self.kernel <= 0 or self.stride <= 0:
            raise ValueError(f"invalid Conv2d parameters: {self}")
        if self.padding < 0 or self.groups <= 0:
            raise ValueError(f"invalid Conv2d parameters: {self}")

    def output(self, x: InputSpec) -> InputSpec:
        if x.channels % self.groups != 0:
            raise ValueError(
                f"channels {x.channels} not divisible by groups {self.groups}"
            )
        return InputSpec(
            height=_conv_out(x.height, self.kernel, self.stride, self.padding),
            width=_conv_out(x.width, self.kernel, self.stride, self.padding),
            channels=self.out_channels,
        )

    def is_depthwise(self, x: InputSpec) -> bool:
        return self.groups == x.channels and self.groups > 1

    def is_pointwise(self) -> bool:
        return self.kernel == 1 and self.groups == 1


@dataclass(frozen=True)
class Pool2d:
    """Max/average pooling (only shape matters here)."""

    kernel: int
    stride: int
    padding: int = 0
    name: str = ""

    def output(self, x: InputSpec) -> InputSpec:
        return InputSpec(
            height=_conv_out(x.height, self.kernel, self.stride, self.padding),
            width=_conv_out(x.width, self.kernel, self.stride, self.padding),
            channels=x.channels,
        )


@dataclass(frozen=True)
class GlobalPool:
    """Global average pooling down to 1x1 spatial."""

    name: str = ""

    def output(self, x: InputSpec) -> InputSpec:
        return InputSpec(height=1, width=1, channels=x.channels)


@dataclass(frozen=True)
class Dense:
    """Fully connected layer (flattens its input)."""

    out_features: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.out_features <= 0:
            raise ValueError("Dense.out_features must be positive")

    def output(self, x: InputSpec) -> InputSpec:
        return InputSpec(height=1, width=1, channels=self.out_features)

    def in_features(self, x: InputSpec) -> int:
        return x.height * x.width * x.channels
