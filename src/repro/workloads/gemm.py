"""The GEMM shape type shared by workloads, kernels and the dataset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["GemmShape"]


@dataclass(frozen=True, order=True, slots=True)
class GemmShape:
    """Dimensions of one matrix multiplication ``C[m,n] = A[m,k] @ B[k,n]``.

    ``batch`` counts independent multiplications of the same size (batched
    GEMM); the paper's shapes come from single-image inference so most
    entries have ``batch == 1``.
    """

    m: int
    k: int
    n: int
    batch: int = 1

    def __post_init__(self) -> None:
        for name in ("m", "k", "n", "batch"):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
                raise TypeError(f"GemmShape.{name} must be an int")
            if value <= 0:
                raise ValueError(f"GemmShape.{name} must be positive, got {value}")

    @property
    def flops(self) -> int:
        """FLOPs of the multiplication (FMA counted as 2)."""
        return 2 * self.batch * self.m * self.k * self.n

    @property
    def bytes_moved(self) -> int:
        """Minimum fp32 traffic: read A and B once, write C once."""
        return 4 * self.batch * (self.m * self.k + self.k * self.n + self.m * self.n)

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of compulsory traffic."""
        return self.flops / self.bytes_moved

    def features(self) -> np.ndarray:
        """The feature vector used by the selection models.

        The paper's features are the matrix dimensions; image batch is
        folded into ``m`` at lowering time, so ``batch`` here only counts
        the independent GEMMs of a batched launch (Winograd's transformed
        tile multiplies) and enters as a fourth feature.
        """
        return np.array([self.m, self.k, self.n, self.batch], dtype=np.float64)

    N_FEATURES = 4
    FEATURE_NAMES = ("m", "k", "n", "batch")

    def as_tuple(self) -> Tuple[int, int, int, int]:
        return (self.m, self.k, self.n, self.batch)

    def __str__(self) -> str:
        suffix = f"x{self.batch}" if self.batch != 1 else ""
        return f"[{self.m}x{self.k}x{self.n}]{suffix}"
