"""The tile-faithful GEMM kernel of the case study.

One work-item computes a ``rows x cols`` tile of C, marching over the
inner dimension in steps of ``acc`` values, exactly as the SYCL-DNN kernel
the paper tunes.  The functional execution reproduces the *numerical
semantics* of that schedule (per-step accumulation order, ragged-edge
bounds checks) while vectorising across work-items for speed; a scalar
per-work-item reference (:func:`work_item_tile`) is used by property tests
to pin the vectorised path to the kernel definition.

Timing comes from :class:`repro.perfmodel.GemmPerfModel`, so submitting
this kernel through a profiling queue yields the simulated R9 Nano
measurements the dataset is built from.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.kernels.params import KernelConfig
from repro.sycl.buffer import Accessor, AccessMode, Buffer
from repro.sycl.device import Device
from repro.sycl.kernel import Kernel, ResourceUsage
from repro.sycl.ndrange import NDRange
from repro.sycl.queue import Queue
from repro.utils.maths import ceil_div
from repro.workloads.gemm import GemmShape

__all__ = ["TiledMatmulKernel", "matmul", "work_item_tile"]


def work_item_tile(
    a: np.ndarray,
    b: np.ndarray,
    config: KernelConfig,
    gi: int,
    gj: int,
) -> np.ndarray:
    """Scalar reference: the tile work-item ``(gi, gj)`` computes.

    Follows the kernel's loop structure literally: for each accumulator
    step, load an A sliver and a B sliver, then update every (r, c)
    accumulator.  Out-of-range rows/columns contribute zeros (the kernel's
    bounds-checked loads).
    """
    m, k = a.shape
    _, n = b.shape
    rows, cols, acc = config.rows, config.cols, config.acc
    accum = np.zeros((rows, cols), dtype=np.float64)
    row0, col0 = gi * rows, gj * cols
    for k0 in range(0, k, acc):
        a_sliver = np.zeros((rows, acc), dtype=np.float64)
        b_sliver = np.zeros((acc, cols), dtype=np.float64)
        for r in range(rows):
            for kk in range(acc):
                if row0 + r < m and k0 + kk < k:
                    a_sliver[r, kk] = a[row0 + r, k0 + kk]
        for kk in range(acc):
            for c in range(cols):
                if k0 + kk < k and col0 + c < n:
                    b_sliver[kk, c] = b[k0 + kk, col0 + c]
        for r in range(rows):
            for c in range(cols):
                for kk in range(acc):
                    accum[r, c] += a_sliver[r, kk] * b_sliver[kk, c]
    return accum


class TiledMatmulKernel(Kernel):
    """``C = A @ B`` with the case study's register-tiled schedule."""

    def __init__(self, config: KernelConfig):
        self._config = config
        self.name = f"tiled_matmul<{config.short_name()}>"
        self._models: Dict[int, object] = {}

    @property
    def config(self) -> KernelConfig:
        return self._config

    def nd_range_for(self, shape: GemmShape) -> NDRange:
        """The launch geometry SYCL-DNN uses for this config and problem."""
        cfg = self._config
        items_m = ceil_div(shape.m, cfg.rows)
        items_n = ceil_div(shape.n, cfg.cols)
        return NDRange((items_m, items_n), (cfg.wg_rows, cfg.wg_cols))

    def run(
        self,
        device: Device,
        ndrange: NDRange,
        accessors: Sequence[Accessor],
    ) -> None:
        a_acc, b_acc, c_acc = self._check_args(accessors)
        a = a_acc.view()
        b = b_acc.view()
        c = c_acc.view()
        acc = self._config.acc
        k = a.shape[1]
        # Vectorised across work-items: the m/n tiling is a pure
        # decomposition of the output (element values are unaffected), but
        # the k-blocking changes floating-point accumulation order, so it
        # is reproduced step by step.
        out = np.zeros_like(c, dtype=np.float64)
        for k0 in range(0, k, acc):
            out += a[:, k0 : k0 + acc].astype(np.float64) @ b[
                k0 : k0 + acc, :
            ].astype(np.float64)
        c[...] = out.astype(c.dtype)

    def estimate_seconds(
        self,
        device: Device,
        ndrange: NDRange,
        accessors: Sequence[Accessor],
    ) -> float:
        from repro.perfmodel.model import GemmPerfModel

        a_acc, b_acc, _ = self._check_args(accessors)
        shape = GemmShape(
            m=a_acc.shape[0], k=a_acc.shape[1], n=b_acc.shape[1]
        )
        key = id(device.spec)
        model = self._models.get(key)
        if model is None:
            model = GemmPerfModel(device)
            self._models[key] = model
        return model.time_seconds(shape, self._config)

    def resource_usage(self, device: Device) -> ResourceUsage:
        return ResourceUsage(vgprs_per_lane=self._config.registers_per_item)

    # -- helpers -----------------------------------------------------------

    def _check_args(self, accessors: Sequence[Accessor]):
        if len(accessors) != 3:
            raise ValueError(
                f"{self.name} expects accessors (A, B, C), got {len(accessors)}"
            )
        a, b, c = accessors
        if a.shape[1] != b.shape[0]:
            raise ValueError(
                f"inner dimensions disagree: A is {a.shape}, B is {b.shape}"
            )
        if c.shape != (a.shape[0], b.shape[1]):
            raise ValueError(
                f"C must be {(a.shape[0], b.shape[1])}, got {c.shape}"
            )
        return a, b, c


def matmul(
    queue: Queue,
    a: np.ndarray,
    b: np.ndarray,
    config: KernelConfig,
) -> tuple:
    """Convenience entry point: run one tiled GEMM on ``queue``.

    Returns ``(C, event)`` — the product as a host array and the profiled
    event for timing queries.
    """
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible GEMM operands {a.shape} x {b.shape}")
    kernel = TiledMatmulKernel(config)
    shape = GemmShape(m=a.shape[0], k=a.shape[1], n=b.shape[1])
    buf_a = Buffer.from_array(a, name="A")
    buf_b = Buffer.from_array(b, name="B")
    buf_c = Buffer((a.shape[0], b.shape[1]), dtype=np.float32, name="C")
    event = queue.submit(
        kernel,
        kernel.nd_range_for(shape),
        args=(
            buf_a.get_access(AccessMode.READ),
            buf_b.get_access(AccessMode.READ),
            buf_c.get_access(AccessMode.WRITE),
        ),
    )
    return buf_c.to_host(), event
