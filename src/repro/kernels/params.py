"""The kernel configuration space of the case study.

A configuration is (``acc``, ``rows``, ``cols``, ``wg_rows``, ``wg_cols``):

* ``rows`` x ``cols`` — the output tile computed by one work-item (values
  held in registers);
* ``acc`` — how many elements of the inner (K) dimension are accumulated
  per loop step (inner-loop unrolling / ILP);
* ``wg_rows`` x ``wg_cols`` — the work-group shape, a *runtime* parameter
  (it does not require a separate compiled kernel).

The paper sweeps each tile parameter over {1, 2, 4, 8} (64 compiled
kernels) and ten work-group shapes, for 640 total configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = [
    "KernelConfig",
    "TILE_SIZES",
    "WORK_GROUP_SHAPES",
    "config_from_index",
    "config_index",
    "config_space",
]

#: Tile-parameter values swept by the paper.
TILE_SIZES: Tuple[int, ...] = (1, 2, 4, 8)

#: Work-group shapes compared by the paper (rows, cols).
WORK_GROUP_SHAPES: Tuple[Tuple[int, int], ...] = (
    (1, 64),
    (1, 128),
    (8, 8),
    (8, 16),
    (8, 32),
    (16, 8),
    (16, 16),
    (32, 8),
    (64, 1),
    (128, 1),
)


@dataclass(frozen=True, order=True)
class KernelConfig:
    """One point of the 640-configuration space."""

    acc: int
    rows: int
    cols: int
    wg_rows: int
    wg_cols: int

    def __post_init__(self) -> None:
        for name in ("acc", "rows", "cols", "wg_rows", "wg_cols"):
            if getattr(self, name) <= 0:
                raise ValueError(f"KernelConfig.{name} must be positive")

    # -- derived quantities used throughout the performance model ---------

    @property
    def tile_elems(self) -> int:
        """Output elements computed per work-item."""
        return self.rows * self.cols

    @property
    def work_group_size(self) -> int:
        return self.wg_rows * self.wg_cols

    @property
    def macro_tile(self) -> Tuple[int, int]:
        """Output elements covered by one work-group (rows, cols)."""
        return (self.rows * self.wg_rows, self.cols * self.wg_cols)

    @property
    def registers_per_item(self) -> int:
        """Estimated fp32 registers one work-item needs: the accumulator
        tile, one A sliver (rows x acc), one B sliver (acc x cols), plus a
        fixed overhead for indices and address arithmetic."""
        overhead = 16
        return self.rows * self.cols + self.acc * (self.rows + self.cols) + overhead

    @property
    def flops_per_item_step(self) -> int:
        """FLOPs (FMA = 2) one work-item performs per accumulator step."""
        return 2 * self.rows * self.cols * self.acc

    def is_compiled_distinct_from(self, other: "KernelConfig") -> bool:
        """Whether the two configs need *different compiled kernels*.

        Work-group shape is a runtime parameter; only the tile parameters
        are template arguments baked into the binary.
        """
        return self.template_key != other.template_key

    @property
    def template_key(self) -> Tuple[int, int, int]:
        """The compile-time template arguments ``(acc, rows, cols)``."""
        return (self.acc, self.rows, self.cols)

    def short_name(self) -> str:
        return (
            f"a{self.acc}r{self.rows}c{self.cols}"
            f"_wg{self.wg_rows}x{self.wg_cols}"
        )

    def __str__(self) -> str:
        return self.short_name()


def config_space(
    tile_sizes: Sequence[int] = TILE_SIZES,
    work_groups: Sequence[Tuple[int, int]] = WORK_GROUP_SHAPES,
) -> List[KernelConfig]:
    """Enumerate the full configuration space in canonical order.

    Canonical order iterates work-group shape fastest, then ``cols``,
    ``rows``, ``acc`` — so configurations sharing a compiled kernel are
    contiguous.  The default arguments yield the paper's 640 configs.
    """
    configs: List[KernelConfig] = []
    for acc in tile_sizes:
        for rows in tile_sizes:
            for cols in tile_sizes:
                for wg_rows, wg_cols in work_groups:
                    configs.append(
                        KernelConfig(
                            acc=acc,
                            rows=rows,
                            cols=cols,
                            wg_rows=wg_rows,
                            wg_cols=wg_cols,
                        )
                    )
    return configs


def config_index(config: KernelConfig) -> int:
    """Index of ``config`` in the canonical :func:`config_space` order."""
    try:
        ti = {v: i for i, v in enumerate(TILE_SIZES)}
        wi = {w: i for i, w in enumerate(WORK_GROUP_SHAPES)}
        return (
            (ti[config.acc] * len(TILE_SIZES) + ti[config.rows]) * len(TILE_SIZES)
            + ti[config.cols]
        ) * len(WORK_GROUP_SHAPES) + wi[(config.wg_rows, config.wg_cols)]
    except KeyError:
        raise ValueError(
            f"{config} is not part of the canonical configuration space"
        ) from None


def config_from_index(index: int) -> KernelConfig:
    """Inverse of :func:`config_index`."""
    n_wg = len(WORK_GROUP_SHAPES)
    n_t = len(TILE_SIZES)
    total = n_t**3 * n_wg
    if not 0 <= index < total:
        raise ValueError(f"config index must be in [0, {total}), got {index}")
    wg = WORK_GROUP_SHAPES[index % n_wg]
    index //= n_wg
    cols = TILE_SIZES[index % n_t]
    index //= n_t
    rows = TILE_SIZES[index % n_t]
    index //= n_t
    acc = TILE_SIZES[index]
    return KernelConfig(acc=acc, rows=rows, cols=cols, wg_rows=wg[0], wg_cols=wg[1])
