"""The "compiled library": a pruned set of kernel instantiations.

A SYCL library ships each kernel's intermediate representation inside the
binary, so every extra template instantiation costs build time and library
size — the pressure that motivates pruning in the first place.  This
module models that cost: a :class:`KernelLibrary` holds the configurations
chosen by a pruning technique, deduplicates the *compiled* templates
(work-group shape is a runtime parameter), accounts for the binary bytes
they occupy, and dispenses ready-to-launch kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.kernels.families import make_kernel
from repro.kernels.matmul import TiledMatmulKernel
from repro.kernels.params import KernelConfig
from repro.sycl.kernel import Kernel
from repro.workloads.gemm import GemmShape

__all__ = ["CompiledKernel", "KernelLibrary"]

#: Fixed per-library overhead (runtime glue, symbol tables), bytes.
_LIBRARY_BASE_BYTES = 96 * 1024
#: Base IR size of one instantiated matmul template, bytes.
_KERNEL_BASE_BYTES = 10 * 1024
#: Extra IR bytes per fully unrolled inner-loop FMA (code growth with
#: tile volume: the compiler unrolls rows x cols x acc updates).
_BYTES_PER_UNROLLED_FMA = 28


@dataclass(frozen=True)
class CompiledKernel:
    """One template instantiation bundled into the library binary."""

    template_key: Tuple[int, int, int]  # (acc, rows, cols)

    @property
    def ir_bytes(self) -> int:
        acc, rows, cols = self.template_key
        return _KERNEL_BASE_BYTES + _BYTES_PER_UNROLLED_FMA * acc * rows * cols


class KernelLibrary:
    """A deployable set of configurations with library-size accounting."""

    def __init__(self, configs: Iterable[KernelConfig]):
        configs = list(configs)
        if not configs:
            raise ValueError("a kernel library must contain at least one config")
        seen = set()
        ordered: List[KernelConfig] = []
        for cfg in configs:
            if cfg not in seen:
                seen.add(cfg)
                ordered.append(cfg)
        self._configs: Tuple[KernelConfig, ...] = tuple(ordered)
        self._compiled: Dict[Tuple[int, int, int], CompiledKernel] = {}
        for cfg in self._configs:
            self._compiled.setdefault(
                cfg.template_key, CompiledKernel(cfg.template_key)
            )

    @property
    def configs(self) -> Tuple[KernelConfig, ...]:
        """The selectable configurations, in insertion order."""
        return self._configs

    @property
    def compiled_kernels(self) -> List[CompiledKernel]:
        """Distinct template instantiations actually compiled in."""
        return list(self._compiled.values())

    @property
    def num_configs(self) -> int:
        return len(self._configs)

    @property
    def num_compiled(self) -> int:
        return len(self._compiled)

    @property
    def binary_bytes(self) -> int:
        """Modelled library size: base plus the bundled kernels' IR."""
        return _LIBRARY_BASE_BYTES + sum(
            ck.ir_bytes for ck in self._compiled.values()
        )

    def __contains__(self, config: KernelConfig) -> bool:
        return config in set(self._configs)

    def __len__(self) -> int:
        return len(self._configs)

    def index_of(self, config: KernelConfig) -> int:
        try:
            return self._configs.index(config)
        except ValueError:
            raise KeyError(f"{config} is not in this library") from None

    def kernel(
        self, config: KernelConfig, shape: Optional[GemmShape] = None
    ) -> Kernel:
        """Instantiate a launchable kernel for one bundled configuration.

        With a ``shape``, the family-appropriate kernel is dispensed
        (GEMV for vector-shaped problems, the batched kernel for
        ``batch > 1`` stacks — see :mod:`repro.kernels.families`);
        without one, the general tiled matmul.
        """
        if config not in self:
            raise KeyError(
                f"{config} is not bundled in this library "
                f"({self.num_configs} configs available)"
            )
        return make_kernel(config, shape)

    def kernel_by_index(self, index: int) -> TiledMatmulKernel:
        return TiledMatmulKernel(self._configs[index])

    def __repr__(self) -> str:
        return (
            f"KernelLibrary({self.num_configs} configs, "
            f"{self.num_compiled} compiled templates, "
            f"{self.binary_bytes / 1024:.0f} KiB)"
        )
