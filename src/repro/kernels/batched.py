"""The batched-GEMM kernel family: many small multiplies, one launch.

Winograd lowering emits ``(tile+2)^2`` independent GEMMs per layer and
transformer attention emits one per head — all the same size, all far
too small to fill the device alone.  Launching them as one batched
kernel amortises the launch overhead and fills the SIMDs with the batch
dimension; the performance model already credits exactly that (the
batch multiplies the work-group count of a single launch), so this
family is the executable counterpart instead of flattening the batch
into a loop of separate GEMM launches.

Each batch element reproduces the tiled matmul's k-blocked accumulation
order exactly, so a loop-of-GEMMs oracle over the slices is bit-identical
— the differential tests pin this.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.kernels.params import KernelConfig
from repro.sycl.buffer import Accessor, AccessMode, Buffer
from repro.sycl.device import Device
from repro.sycl.kernel import Kernel, ResourceUsage
from repro.sycl.ndrange import NDRange
from repro.sycl.queue import Queue
from repro.utils.maths import ceil_div
from repro.workloads.gemm import GemmShape

__all__ = ["BatchedMatmulKernel", "batched_matmul"]


class BatchedMatmulKernel(Kernel):
    """``C[i] = A[i] @ B[i]`` for a stack of same-shape operands."""

    def __init__(self, config: KernelConfig):
        self._config = config
        self.name = f"tiled_batched_matmul<{config.short_name()}>"
        self._models: Dict[int, object] = {}

    @property
    def config(self) -> KernelConfig:
        return self._config

    def nd_range_for(self, shape: GemmShape) -> NDRange:
        """One batched launch: the batch rides the third global dimension."""
        cfg = self._config
        items_m = ceil_div(shape.m, cfg.rows)
        items_n = ceil_div(shape.n, cfg.cols)
        return NDRange(
            (items_m, items_n, shape.batch), (cfg.wg_rows, cfg.wg_cols, 1)
        )

    def run(
        self,
        device: Device,
        ndrange: NDRange,
        accessors: Sequence[Accessor],
    ) -> None:
        a_acc, b_acc, c_acc = self._check_args(accessors)
        a = a_acc.view()
        b = b_acc.view()
        c = c_acc.view()
        acc = self._config.acc
        k = a.shape[2]
        # Per-slice evaluation with the matmul kernel's exact k-blocked
        # accumulation order: bit-identical to a loop of single GEMMs
        # over the slices (the batching is a launch optimisation, not a
        # numerical one).
        for i in range(a.shape[0]):
            out = np.zeros_like(c[i], dtype=np.float64)
            for k0 in range(0, k, acc):
                out += a[i, :, k0 : k0 + acc].astype(np.float64) @ b[
                    i, k0 : k0 + acc, :
                ].astype(np.float64)
            c[i, ...] = out.astype(c.dtype)

    def estimate_seconds(
        self,
        device: Device,
        ndrange: NDRange,
        accessors: Sequence[Accessor],
    ) -> float:
        from repro.perfmodel.model import GemmPerfModel

        a_acc, b_acc, _ = self._check_args(accessors)
        shape = GemmShape(
            m=a_acc.shape[1],
            k=a_acc.shape[2],
            n=b_acc.shape[2],
            batch=a_acc.shape[0],
        )
        key = id(device.spec)
        model = self._models.get(key)
        if model is None:
            model = GemmPerfModel(device)
            self._models[key] = model
        return model.time_seconds(shape, self._config)

    def resource_usage(self, device: Device) -> ResourceUsage:
        return ResourceUsage(vgprs_per_lane=self._config.registers_per_item)

    # -- helpers -----------------------------------------------------------

    def _check_args(self, accessors: Sequence[Accessor]):
        if len(accessors) != 3:
            raise ValueError(
                f"{self.name} expects accessors (A, B, C), got {len(accessors)}"
            )
        a, b, c = accessors
        if len(a.shape) != 3 or len(b.shape) != 3 or len(c.shape) != 3:
            raise ValueError(
                f"{self.name} expects 3-D (batch, rows, cols) operands, "
                f"got {a.shape} x {b.shape} -> {c.shape}"
            )
        if a.shape[0] != b.shape[0]:
            raise ValueError(
                f"batch counts disagree: A is {a.shape}, B is {b.shape}"
            )
        if a.shape[2] != b.shape[1]:
            raise ValueError(
                f"inner dimensions disagree: A is {a.shape}, B is {b.shape}"
            )
        if c.shape != (a.shape[0], a.shape[1], b.shape[2]):
            raise ValueError(
                f"C must be {(a.shape[0], a.shape[1], b.shape[2])}, "
                f"got {c.shape}"
            )
        return a, b, c


def batched_matmul(
    queue: Queue,
    a: np.ndarray,
    b: np.ndarray,
    config: KernelConfig,
) -> tuple:
    """Convenience entry point: one batched GEMM launch on ``queue``.

    ``a`` is ``(batch, m, k)``, ``b`` is ``(batch, k, n)``.  Returns
    ``(C, event)`` with ``C`` of shape ``(batch, m, n)``.
    """
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    if (
        a.ndim != 3
        or b.ndim != 3
        or a.shape[0] != b.shape[0]
        or a.shape[2] != b.shape[1]
    ):
        raise ValueError(
            f"incompatible batched GEMM operands {a.shape} x {b.shape}"
        )
    kernel = BatchedMatmulKernel(config)
    shape = GemmShape(
        m=a.shape[1], k=a.shape[2], n=b.shape[2], batch=a.shape[0]
    )
    buf_a = Buffer.from_array(a, name="A")
    buf_b = Buffer.from_array(b, name="B")
    buf_c = Buffer(
        (a.shape[0], a.shape[1], b.shape[2]), dtype=np.float32, name="C"
    )
    event = queue.submit(
        kernel,
        kernel.nd_range_for(shape),
        args=(
            buf_a.get_access(AccessMode.READ),
            buf_b.get_access(AccessMode.READ),
            buf_c.get_access(AccessMode.WRITE),
        ),
    )
    return buf_c.to_host(), event
