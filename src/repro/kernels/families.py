"""Kernel families: which executable kernel serves a GEMM shape.

The configuration space is one vocabulary (every family shares the
tile/work-group parameters and their compiled templates), but the
executable kernel differs by shape family:

* ``gemm`` — the general tiled matmul;
* ``gemv`` — matrix-vector degenerate (``m == 1`` or ``n == 1``),
  e.g. fully-connected layers at image batch 1 and transformer decode
  projections;
* ``batched`` — ``batch > 1`` stacks of small GEMMs from Winograd
  lowering and per-head attention, launched as one batched kernel
  instead of a flattened loop.

:func:`family_for_shape` is the single dispatch rule; the library and
the deployed selector route through it so callers always receive the
family-appropriate kernel for the config a selector picked.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.kernels.batched import BatchedMatmulKernel
from repro.kernels.gemv import GemvKernel
from repro.kernels.matmul import TiledMatmulKernel
from repro.kernels.params import KernelConfig
from repro.sycl.kernel import Kernel
from repro.workloads.gemm import GemmShape

__all__ = [
    "FAMILIES",
    "FAMILY_BATCHED",
    "FAMILY_GEMM",
    "FAMILY_GEMV",
    "family_for_shape",
    "make_kernel",
]

FAMILY_GEMM = "gemm"
FAMILY_GEMV = "gemv"
FAMILY_BATCHED = "batched"

FAMILIES: Tuple[str, ...] = (FAMILY_GEMM, FAMILY_GEMV, FAMILY_BATCHED)


def family_for_shape(shape: GemmShape) -> str:
    """The kernel family serving one GEMM shape.

    A batched stack takes the batched kernel even when its slices are
    vector-shaped (the batch dimension is what fills the device);
    otherwise a unit output dimension selects the GEMV family.
    """
    if shape.batch > 1:
        return FAMILY_BATCHED
    if shape.m == 1 or shape.n == 1:
        return FAMILY_GEMV
    return FAMILY_GEMM


def make_kernel(
    config: KernelConfig, shape: Optional[GemmShape] = None
) -> Kernel:
    """Instantiate the family-appropriate kernel for ``config``.

    Without a shape the general matmul is returned (the historical
    behaviour of every call site that predates families).
    """
    family = FAMILY_GEMM if shape is None else family_for_shape(shape)
    if family == FAMILY_BATCHED:
        return BatchedMatmulKernel(config)
    if family == FAMILY_GEMV:
        return GemvKernel(config)
    return TiledMatmulKernel(config)
