"""Reference GEMM kernel: one output element per work-item, no tiling.

Serves two purposes: a numerical oracle for validating the tiled kernel,
and the untuned baseline a library would ship if it did no kernel
selection at all (used by the ablation benchmarks).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.kernels.params import KernelConfig
from repro.sycl.buffer import Accessor
from repro.sycl.device import Device
from repro.sycl.kernel import Kernel, ResourceUsage
from repro.sycl.ndrange import NDRange

__all__ = ["NaiveMatmulKernel"]

#: The naive schedule expressed in the configuration space: a 1x1 output
#: tile, one accumulation per step, square 16x16 work-groups.
NAIVE_CONFIG = KernelConfig(acc=1, rows=1, cols=1, wg_rows=16, wg_cols=16)


class NaiveMatmulKernel(Kernel):
    """``C[i, j] = sum_k A[i, k] * B[k, j]`` with no blocking."""

    name = "naive_matmul"

    def run(
        self,
        device: Device,
        ndrange: NDRange,
        accessors: Sequence[Accessor],
    ) -> None:
        if len(accessors) != 3:
            raise ValueError("naive_matmul expects accessors (A, B, C)")
        a, b, c = (acc.view() for acc in accessors)
        c[...] = (a.astype(np.float64) @ b.astype(np.float64)).astype(c.dtype)

    def estimate_seconds(
        self,
        device: Device,
        ndrange: NDRange,
        accessors: Sequence[Accessor],
    ) -> float:
        from repro.perfmodel.model import GemmPerfModel
        from repro.workloads.gemm import GemmShape

        a, b, _ = accessors
        shape = GemmShape(m=a.shape[0], k=a.shape[1], n=b.shape[1])
        return GemmPerfModel(device).time_seconds(shape, NAIVE_CONFIG)

    def resource_usage(self, device: Device) -> ResourceUsage:
        return ResourceUsage(vgprs_per_lane=NAIVE_CONFIG.registers_per_item)
