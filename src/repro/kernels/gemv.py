"""The GEMV kernel family: matrix-vector products under the tiled schedule.

A GEMM degenerates to a matrix-vector product when either output
dimension is 1 — fully-connected layers at image batch 1 (``m == 1``)
and transformer decode projections are the dominant sources.  SYCL-DNN
ships a dedicated ``gemv`` kernel for these because the square-tile
matmul wastes a whole tile dimension on them; here the family shares
the matmul's k-blocked accumulation schedule (so it is *numerically
identical* to the GEMM path on the same shape — the differential tests
pin this) while validating the degenerate geometry and reporting a
vector-shaped launch.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.kernels.matmul import TiledMatmulKernel
from repro.kernels.params import KernelConfig
from repro.sycl.buffer import Accessor, AccessMode, Buffer
from repro.sycl.ndrange import NDRange
from repro.sycl.queue import Queue
from repro.utils.maths import ceil_div
from repro.workloads.gemm import GemmShape

__all__ = ["GemvKernel", "gemv"]


class GemvKernel(TiledMatmulKernel):
    """``y = A @ x`` (or ``y = x^T @ B``) with the tiled k-blocked schedule.

    Subclasses the matmul kernel so the accumulation order — and hence
    every floating-point result — is the GEMM path's, bit for bit; only
    the argument validation (one output dimension must be 1) and the
    launch geometry differ.
    """

    def __init__(self, config: KernelConfig):
        super().__init__(config)
        self.name = f"tiled_gemv<{config.short_name()}>"

    def nd_range_for(self, shape: GemmShape) -> NDRange:
        """The launch collapses the unit output dimension to one item."""
        cfg = self.config
        items_m = 1 if shape.m == 1 else ceil_div(shape.m, cfg.rows)
        items_n = 1 if shape.n == 1 else ceil_div(shape.n, cfg.cols)
        return NDRange((items_m, items_n), (cfg.wg_rows, cfg.wg_cols))

    def _check_args(self, accessors: Sequence[Accessor]):
        a, b, c = super()._check_args(accessors)
        if a.shape[0] != 1 and b.shape[1] != 1:
            raise ValueError(
                f"{self.name} expects a matrix-vector product (m == 1 or "
                f"n == 1), got {a.shape} x {b.shape}"
            )
        return a, b, c


def gemv(
    queue: Queue,
    a: np.ndarray,
    x: np.ndarray,
    config: KernelConfig,
) -> tuple:
    """Convenience entry point: ``y = A @ x`` on ``queue``.

    ``x`` may be 1-D ``(k,)`` or a column ``(k, 1)``; the result comes
    back 1-D.  Returns ``(y, event)``.
    """
    a = np.asarray(a, dtype=np.float32)
    x = np.asarray(x, dtype=np.float32)
    if x.ndim == 1:
        x = x[:, None]
    if a.ndim != 2 or x.shape != (a.shape[1], 1):
        raise ValueError(f"incompatible GEMV operands {a.shape} x {x.shape}")
    kernel = GemvKernel(config)
    shape = GemmShape(m=a.shape[0], k=a.shape[1], n=1)
    buf_a = Buffer.from_array(a, name="A")
    buf_x = Buffer.from_array(x, name="x")
    buf_y = Buffer((a.shape[0], 1), dtype=np.float32, name="y")
    event = queue.submit(
        kernel,
        kernel.nd_range_for(shape),
        args=(
            buf_a.get_access(AccessMode.READ),
            buf_x.get_access(AccessMode.READ),
            buf_y.get_access(AccessMode.WRITE),
        ),
    )
    return buf_y.to_host()[:, 0], event
