"""Convolution executed through GEMM, as SYCL-DNN does.

The paper's dataset exists because "convolutional layers in neural
network models can be computed using a matrix multiply through
transformations such as the im2col and Winograd".  This module implements
both transformations *functionally* on the SYCL runtime, so the GEMM
shapes the workload extraction predicts are exactly the GEMMs these
routines launch:

* :func:`conv2d_im2col` — gather input patches into a
  ``(H_out * W_out, KH * KW * C)`` matrix and run one GEMM against the
  reshaped filters;
* :func:`conv2d_winograd` — the F(2x2, 3x3) fast algorithm: transform
  4x4 input tiles and 3x3 filters into 16 element-wise positions, run 16
  independent ``(tiles x C) @ (C x F)`` GEMMs (a batched GEMM), and
  transform back;
* :func:`conv2d_direct` — the numerical oracle.

Tensors are HWC for activations and ``(KH, KW, C, F)`` for weights.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels.matmul import matmul
from repro.kernels.params import KernelConfig
from repro.sycl.queue import Queue
from repro.utils.maths import ceil_div
from repro.workloads.gemm import GemmShape

__all__ = [
    "conv2d_direct",
    "conv2d_im2col",
    "conv2d_winograd",
    "im2col",
]


def _check_conv_args(
    x: np.ndarray, w: np.ndarray, stride: int, padding: int
) -> Tuple[int, int]:
    if x.ndim != 3:
        raise ValueError(f"input must be (H, W, C), got shape {x.shape}")
    if w.ndim != 4:
        raise ValueError(f"weights must be (KH, KW, C, F), got shape {w.shape}")
    if x.shape[2] != w.shape[2]:
        raise ValueError(
            f"channel mismatch: input has {x.shape[2]}, weights expect {w.shape[2]}"
        )
    if stride < 1 or padding < 0:
        raise ValueError(f"invalid stride={stride} / padding={padding}")
    h_out = (x.shape[0] + 2 * padding - w.shape[0]) // stride + 1
    w_out = (x.shape[1] + 2 * padding - w.shape[1]) // stride + 1
    if h_out <= 0 or w_out <= 0:
        raise ValueError("convolution output collapsed to zero size")
    return h_out, w_out


def _pad(x: np.ndarray, padding: int) -> np.ndarray:
    if padding == 0:
        return x
    return np.pad(x, ((padding, padding), (padding, padding), (0, 0)))


def conv2d_direct(
    x: np.ndarray, w: np.ndarray, *, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Reference convolution (pure NumPy, no GEMM lowering)."""
    h_out, w_out = _check_conv_args(x, w, stride, padding)
    xp = _pad(np.asarray(x, dtype=np.float64), padding)
    kh, kw, c, f = w.shape
    out = np.zeros((h_out, w_out, f))
    for i in range(kh):
        for j in range(kw):
            patch = xp[
                i : i + stride * h_out : stride,
                j : j + stride * w_out : stride,
                :,
            ]
            out += patch @ np.asarray(w, dtype=np.float64)[i, j]
    return out


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], *, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Patch matrix: rows are output positions, columns (kh, kw, c)."""
    kh, kw = kernel
    if x.ndim != 3:
        raise ValueError(f"input must be (H, W, C), got {x.shape}")
    xp = _pad(x, padding)
    h_out = (x.shape[0] + 2 * padding - kh) // stride + 1
    w_out = (x.shape[1] + 2 * padding - kw) // stride + 1
    if h_out <= 0 or w_out <= 0:
        raise ValueError("im2col output collapsed to zero size")
    c = x.shape[2]
    cols = np.empty((h_out * w_out, kh * kw * c), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            patch = xp[
                i : i + stride * h_out : stride,
                j : j + stride * w_out : stride,
                :,
            ]
            cols[:, (i * kw + j) * c : (i * kw + j + 1) * c] = patch.reshape(
                h_out * w_out, c
            )
    return cols


def conv2d_im2col(
    queue: Queue,
    x: np.ndarray,
    w: np.ndarray,
    config: KernelConfig,
    *,
    stride: int = 1,
    padding: int = 0,
):
    """Convolution as one GEMM on the device.

    Returns ``(output, event)``; the launched GEMM has exactly the shape
    :func:`repro.workloads.lowering.lower_conv_im2col` predicts.
    """
    h_out, w_out = _check_conv_args(x, w, stride, padding)
    kh, kw, c, f = w.shape
    a = im2col(
        np.asarray(x, dtype=np.float32), (kh, kw), stride=stride, padding=padding
    )
    b = np.asarray(w, dtype=np.float32).reshape(kh * kw * c, f)
    out, event = matmul(queue, a, b, config)
    return out.reshape(h_out, w_out, f), event


# -- Winograd F(2x2, 3x3) ---------------------------------------------------

# Transform matrices (Lavin & Gray 2016).
_BT = np.array(
    [
        [1.0, 0.0, -1.0, 0.0],
        [0.0, 1.0, 1.0, 0.0],
        [0.0, -1.0, 1.0, 0.0],
        [0.0, 1.0, 0.0, -1.0],
    ]
)
_G = np.array(
    [
        [1.0, 0.0, 0.0],
        [0.5, 0.5, 0.5],
        [0.5, -0.5, 0.5],
        [0.0, 0.0, 1.0],
    ]
)
_AT = np.array(
    [
        [1.0, 1.0, 1.0, 0.0],
        [0.0, 1.0, -1.0, -1.0],
    ]
)


def conv2d_winograd(
    queue: Queue,
    x: np.ndarray,
    w: np.ndarray,
    config: KernelConfig,
    *,
    padding: int = 0,
):
    """F(2x2, 3x3) Winograd convolution (stride 1 only).

    Returns ``(output, events)`` where ``events`` holds the 16 transformed
    GEMM launches — the batched GEMM the lowering pass models with
    ``batch=16``.
    """
    if w.shape[0] != 3 or w.shape[1] != 3:
        raise ValueError("Winograd F(2x2, 3x3) requires 3x3 filters")
    h_out, w_out = _check_conv_args(x, w, 1, padding)
    kh, kw, c, f = w.shape

    tiles_h = ceil_div(h_out, 2)
    tiles_w = ceil_div(w_out, 2)
    n_tiles = tiles_h * tiles_w

    # Pad so every 4x4 input tile (stride 2) is in range.
    xp = _pad(np.asarray(x, dtype=np.float64), padding)
    need_h = 2 * tiles_h + 2
    need_w = 2 * tiles_w + 2
    xp = np.pad(
        xp,
        ((0, max(0, need_h - xp.shape[0])), (0, max(0, need_w - xp.shape[1])), (0, 0)),
    )

    # Input transform: V[xi, nu, c, tile] = (B^T d B)[xi, nu] per tile.
    d = np.empty((n_tiles, 4, 4, c))
    for th in range(tiles_h):
        for tw in range(tiles_w):
            tile = xp[2 * th : 2 * th + 4, 2 * tw : 2 * tw + 4, :]
            d[th * tiles_w + tw] = tile
    v = np.einsum("ij,tjkc,lk->tilc", _BT, d, _BT)  # (tiles, 4, 4, C)

    # Filter transform: U[xi, nu, c, f] = (G g G^T)[xi, nu].
    u = np.einsum("ij,jkcf,lk->ilcf", _G, np.asarray(w, dtype=np.float64), _G)

    # 16 independent GEMMs: M[xi, nu] = V[xi, nu] (tiles x C) @ U (C x F).
    m = np.empty((4, 4, n_tiles, f))
    events = []
    for xi in range(4):
        for nu in range(4):
            a = v[:, xi, nu, :].astype(np.float32)  # (tiles, C)
            b = u[xi, nu].astype(np.float32)  # (C, F)
            out, event = matmul(queue, a, b, config)
            m[xi, nu] = out.astype(np.float64)
            events.append(event)

    # Output transform: Y = A^T m A per tile, scatter into the output.
    y = np.einsum("ij,jktf,lk->tilf", _AT, m, _AT)  # (tiles, 2, 2, F)
    out = np.zeros((2 * tiles_h, 2 * tiles_w, f))
    for th in range(tiles_h):
        for tw in range(tiles_w):
            out[2 * th : 2 * th + 2, 2 * tw : 2 * tw + 2, :] = y[
                th * tiles_w + tw
            ]
    return out[:h_out, :w_out, :], events


def winograd_gemm_shape(x: np.ndarray, w: np.ndarray, *, padding: int = 0) -> GemmShape:
    """The batched GEMM shape :func:`conv2d_winograd` will launch."""
    h_out, w_out = _check_conv_args(x, w, 1, padding)
    tiles = ceil_div(h_out, 2) * ceil_div(w_out, 2)
    return GemmShape(m=tiles, k=x.shape[2], n=w.shape[3], batch=16)
