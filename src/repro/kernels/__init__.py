"""SYCL-DNN-style GEMM kernels and their configuration space.

The paper's case-study kernel computes one output tile per work-item,
accumulating ``acc`` values of the inner dimension per step.  Its three
compile-time parameters (``acc``, ``rows``, ``cols``, each in {1, 2, 4, 8})
give 64 distinct kernels; crossed with ten runtime work-group shapes this
yields the 640 configurations the paper selects among.

* :mod:`repro.kernels.params` — :class:`KernelConfig` and the full space.
* :mod:`repro.kernels.matmul` — the tile-faithful functional kernel.
* :mod:`repro.kernels.naive` — reference kernel for validation.
* :mod:`repro.kernels.registry` — a "compiled library" holding a pruned
  set of kernel instantiations, with library-size accounting.
"""

from repro.kernels.params import (
    KernelConfig,
    TILE_SIZES,
    WORK_GROUP_SHAPES,
    config_space,
    config_from_index,
    config_index,
)
from repro.kernels.conv import (
    conv2d_direct,
    conv2d_im2col,
    conv2d_winograd,
    im2col,
)
from repro.kernels.batched import BatchedMatmulKernel, batched_matmul
from repro.kernels.families import (
    FAMILIES,
    family_for_shape,
    make_kernel,
)
from repro.kernels.gemv import GemvKernel, gemv
from repro.kernels.matmul import TiledMatmulKernel, matmul
from repro.kernels.naive import NaiveMatmulKernel
from repro.kernels.registry import CompiledKernel, KernelLibrary

__all__ = [
    "BatchedMatmulKernel",
    "CompiledKernel",
    "FAMILIES",
    "GemvKernel",
    "KernelConfig",
    "KernelLibrary",
    "NaiveMatmulKernel",
    "TILE_SIZES",
    "TiledMatmulKernel",
    "WORK_GROUP_SHAPES",
    "batched_matmul",
    "conv2d_direct",
    "conv2d_im2col",
    "conv2d_winograd",
    "im2col",
    "config_from_index",
    "config_index",
    "config_space",
    "family_for_shape",
    "gemv",
    "make_kernel",
    "matmul",
]
