"""End-to-end kernel time model: :class:`GemmPerfModel`.

Combines occupancy, compute-pipeline and memory models into a
roofline-style time estimate with launch overheads, tile-edge waste, wave
quantisation and deterministic microarchitectural quirk terms.  Provides
both the deterministic expected time and noisy "measured" times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.kernels.params import KernelConfig, config_index
from repro.perfmodel.compute import (
    ComputeEfficiency,
    compute_efficiency,
    latency_hiding,
)
from repro.perfmodel.memory import MemoryTraffic, memory_traffic
from repro.perfmodel.noise import measurement_noise_factor, noise_factors
from repro.perfmodel.occupancy import OccupancyResult, occupancy_for
from repro.perfmodel.params import PerfModelParams
from repro.perfmodel.transfer import (
    DataPlacement,
    resolve_placement,
    transfer_phases,
)
from repro.sycl.device import Device, DeviceSpec
from repro.utils.maths import ceil_div
from repro.utils.rng import derive_seed
from repro.workloads.gemm import GemmShape

__all__ = ["GemmPerfModel", "ModelBreakdown"]


@dataclass(frozen=True)
class ModelBreakdown:
    """Every intermediate quantity behind one time estimate."""

    occupancy: OccupancyResult
    compute: ComputeEfficiency
    memory: MemoryTraffic
    #: Useful output elements over launched output elements (edge waste).
    tile_utilization: float
    #: Extra factor from the k-loop processing whole `acc` steps.
    k_tail_factor: float
    #: Waves actually resident per SIMD given the launch size.
    resident_waves: float
    #: Fraction of the device's SIMDs with any work.
    simd_utilization: float
    #: Launch-dependent latency-hiding efficiency.
    latency_hiding: float
    #: Tail-round stretch factor from whole-round wave scheduling (>= 1).
    quantization: float
    #: Deterministic quirk multiplier on time (around 1).
    quirk: float
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float
    total_seconds: float
    #: Operand placement the estimate assumes (a DataPlacement value).
    placement: str = DataPlacement.DEVICE.value
    #: Device-side execution time alone (equals ``total_seconds`` for
    #: device-resident operands).
    kernel_seconds: float = 0.0
    #: Full per-direction transfer times (zero when device-resident).
    h2d_seconds: float = 0.0
    d2h_seconds: float = 0.0
    #: Transfer time hidden behind compute by the overlap model.
    hidden_transfer_seconds: float = 0.0

    @property
    def visible_transfer_seconds(self) -> float:
        """Transfer time extending the launch past the kernel."""
        return self.h2d_seconds + self.d2h_seconds - self.hidden_transfer_seconds

    @property
    def bound(self) -> str:
        """The dominating phase: "compute", "memory" or "transfer"."""
        if self.visible_transfer_seconds > max(
            self.compute_seconds, self.memory_seconds
        ):
            return "transfer"
        return "compute" if self.compute_seconds >= self.memory_seconds else "memory"


class GemmPerfModel:
    """Analytical timing model for the tiled GEMM kernel on one device.

    Parameters
    ----------
    device:
        The simulated target (a :class:`~repro.sycl.device.Device` or its
        spec).
    params:
        Model constants; defaults are the GCN3 calibration.
    seed:
        Root seed for the measurement-noise streams.
    """

    def __init__(
        self,
        device: Device | DeviceSpec,
        *,
        params: Optional[PerfModelParams] = None,
        seed: int = 2020,
    ):
        self._spec = device.spec if isinstance(device, Device) else device
        self._params = params or PerfModelParams()
        self._seed = int(seed)
        # Occupancy and compute efficiency depend only on the config, so
        # memoise them: dataset generation evaluates 640 configs x many
        # shapes and this removes the dominant repeated work.
        self._static_cache: dict = {}

    @property
    def device_spec(self) -> DeviceSpec:
        return self._spec

    @property
    def params(self) -> PerfModelParams:
        return self._params

    @property
    def seed(self) -> int:
        return self._seed

    # -- static (shape-independent) components --------------------------

    def _static(self, config: KernelConfig):
        key = config
        hit = self._static_cache.get(key)
        if hit is not None:
            return hit
        occ = occupancy_for(config, self._spec)
        ceff = compute_efficiency(config, self._params)
        self._static_cache[key] = (occ, ceff)
        return occ, ceff

    # -- public API -------------------------------------------------------

    def supported(self, config: KernelConfig) -> bool:
        """Whether the configuration can launch on this device at all."""
        try:
            self._static(config)
            return True
        except ValueError:
            return False

    def breakdown(self, shape: GemmShape, config: KernelConfig) -> ModelBreakdown:
        """Full model evaluation with all intermediate terms."""
        spec, params = self._spec, self._params
        occ, ceff = self._static(config)
        mem = memory_traffic(shape, config, spec, params)

        macro_m, macro_n = config.macro_tile
        groups_m = ceil_div(shape.m, macro_m)
        groups_n = ceil_div(shape.n, macro_n)
        total_groups = groups_m * groups_n * shape.batch

        covered = (groups_m * macro_m) * (groups_n * macro_n)
        tile_utilization = (shape.m * shape.n) / covered

        k_steps = ceil_div(shape.k, config.acc)
        k_tail = (k_steps * config.acc) / shape.k

        # FLOPs actually issued (edge tiles and the k tail still execute).
        launched_flops = 2.0 * covered * k_steps * config.acc * shape.batch

        # Launch geometry: how the waves land on the device's SIMDs.
        total_waves = total_groups * occ.waves_per_group
        simds = spec.compute_units * spec.simds_per_cu
        capacity = simds * occ.waves_per_simd
        # Underfilled launch: idle SIMDs contribute no throughput, and each
        # busy SIMD holds fewer waves than the occupancy limit allows.
        simd_utilization = min(1.0, total_waves / simds)
        resident_waves = float(
            np.clip(total_waves / simds, 1.0, occ.waves_per_simd)
        )
        hiding = latency_hiding(
            resident_waves, ceff.ilp, params, max_waves=spec.max_waves_per_simd
        )
        # Tail rounds: once the device is saturated, work drains in whole
        # residency rounds; a 1.1-round launch takes 2 rounds' time.
        rounds = ceil_div(total_waves, capacity)
        quantization = (
            rounds * capacity / total_waves if total_waves > capacity else 1.0
        )

        # Deterministic quirk: bank conflicts / alignment interactions not
        # captured structurally.  Keyed on shape residues and the config so
        # it is a stable, learnable property of the (shape, config) pair.
        quirk = self._quirk(shape, config)

        peak = spec.peak_gflops * 1e9 * spec.sustained_compute_efficiency
        effective_rate = (
            peak * simd_utilization * ceff.static_total * hiding
        )
        compute_seconds = launched_flops / effective_rate * quantization * quirk

        bandwidth = (
            spec.dram_bandwidth_gbps
            * 1e9
            * spec.sustained_bandwidth_efficiency
            * mem.access_efficiency
        )
        memory_seconds = mem.dram_bytes / bandwidth * quirk

        overhead_seconds = (
            spec.kernel_launch_overhead_us * 1e-6 + params.host_overhead_s
        )

        # Imperfect overlap between the compute and memory pipelines.
        kernel_total = (
            overhead_seconds
            + max(compute_seconds, memory_seconds)
            + 0.15 * min(compute_seconds, memory_seconds)
        )

        # Host-resident operands add the H2D / D2H phases (partially
        # hidden behind the kernel); device-resident shapes keep the
        # transfer-free estimate bit-for-bit.
        placement = resolve_placement(shape)
        h2d_seconds = d2h_seconds = hidden_seconds = 0.0
        total = kernel_total
        if placement == DataPlacement.HOST.value:
            transfers = transfer_phases(
                shape, config, params, kernel_seconds=kernel_total
            )
            h2d_seconds = transfers.h2d_seconds
            d2h_seconds = transfers.d2h_seconds
            hidden_seconds = transfers.hidden_seconds
            total = kernel_total + transfers.visible_seconds

        return ModelBreakdown(
            occupancy=occ,
            compute=ceff,
            memory=mem,
            tile_utilization=tile_utilization,
            k_tail_factor=k_tail,
            resident_waves=resident_waves,
            simd_utilization=simd_utilization,
            latency_hiding=hiding,
            quantization=quantization,
            quirk=quirk,
            compute_seconds=compute_seconds,
            memory_seconds=memory_seconds,
            overhead_seconds=overhead_seconds,
            total_seconds=total,
            placement=placement,
            kernel_seconds=kernel_total,
            h2d_seconds=h2d_seconds,
            d2h_seconds=d2h_seconds,
            hidden_transfer_seconds=hidden_seconds,
        )

    def time_seconds(self, shape: GemmShape, config: KernelConfig) -> float:
        """Deterministic expected kernel time."""
        return self.breakdown(shape, config).total_seconds

    def gflops(self, shape: GemmShape, config: KernelConfig) -> float:
        """Deterministic achieved GFLOP/s (useful flops over model time)."""
        return shape.flops / self.time_seconds(shape, config) / 1e9

    def measured_time_seconds(
        self,
        shape: GemmShape,
        config: KernelConfig,
        *,
        iteration: int = 0,
    ) -> float:
        """One noisy timing measurement (reproducible per iteration)."""
        factor = measurement_noise_factor(
            self._seed, shape, config, iteration, sigma=self._params.noise_sigma
        )
        return self.time_seconds(shape, config) * factor

    def measured_times_seconds(
        self,
        shape: GemmShape,
        config: KernelConfig,
        *,
        iterations: int,
        start_iteration: int = 0,
    ) -> np.ndarray:
        """A block of consecutive noisy measurements (one stream draw)."""
        factors = noise_factors(
            self._seed,
            shape,
            config,
            iterations,
            sigma=self._params.noise_sigma,
            start_iteration=start_iteration,
        )
        return self.time_seconds(shape, config) * factors

    def measured_gflops(
        self,
        shape: GemmShape,
        config: KernelConfig,
        *,
        iterations: int = 1,
    ) -> float:
        """Benchmark-style measurement: mean of ``iterations`` noisy runs."""
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        times = self.measured_times_seconds(shape, config, iterations=iterations)
        return shape.flops / float(np.mean(times)) / 1e9

    # -- internals ----------------------------------------------------------

    def _quirk(self, shape: GemmShape, config: KernelConfig) -> float:
        """Stable, structured perturbation around 1.

        Two components model the idiosyncrasies an analytical model cannot
        capture but real hardware exhibits (the reason the paper's dataset
        has a long tail of shape-specific winners):

        * a *coarse* term keyed on log-magnitude buckets of the problem
          dimensions — smooth in feature space, hence learnable by the
          selection models;
        * a *fine* term keyed on address-alignment residues — effectively
          unlearnable from raw sizes, bounding what any selector can
          achieve (Table I's gap between ceiling and scores).
        """
        amplitude = self._params.alignment_penalty
        if amplitude == 0:
            return 1.0
        ci = config_index(config)
        step = self._params.quirk_coarse_log_step

        coarse_h = derive_seed(
            self._seed,
            "quirk-coarse",
            ci,
            int(np.log2(shape.m) / step),
            int(np.log2(shape.k) / step),
            int(np.log2(shape.n) / step),
        )
        fine_h = derive_seed(
            self._seed,
            "quirk-fine",
            ci,
            shape.k % 16,
            shape.n % 32,
            shape.m % 8,
        )
        coarse = (coarse_h % 10_000) / 10_000.0 * 2.0 - 1.0
        fine = (fine_h % 10_000) / 10_000.0 * 2.0 - 1.0
        w = self._params.quirk_coarse_weight
        return 1.0 + amplitude * (w * coarse + (1.0 - w) * fine)
