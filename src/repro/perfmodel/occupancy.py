"""Occupancy: resident wavefronts per SIMD for a kernel configuration.

On GCN a SIMD keeps up to ``max_waves_per_simd`` wavefronts resident, but
each resident wave needs its registers allocated for its whole lifetime, so
a kernel using ``R`` vector registers per lane allows only
``floor(vgprs_per_lane / R)`` waves.  Local memory is shared per CU; this
kernel family does not use LDS, but the limit is modelled anyway so other
kernels validate correctly.

Low occupancy is the primary reason large-tile configurations lose on
small matrices in the paper's dataset: an 8x8 output tile costs ~100
registers, capping residency at 2 waves and leaving memory latency
exposed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.params import KernelConfig
from repro.sycl.device import DeviceSpec
from repro.utils.maths import ceil_div

__all__ = ["OccupancyResult", "occupancy_for"]


@dataclass(frozen=True)
class OccupancyResult:
    """Residency achieved by a configuration on a device."""

    waves_per_simd: int
    max_waves_per_simd: int
    #: Which resource capped residency: "registers", "lds", "wave-slots"
    #: or "group-size".
    limited_by: str
    waves_per_group: int

    @property
    def occupancy(self) -> float:
        """Fraction of the device's wave slots occupied (0, 1]."""
        return self.waves_per_simd / self.max_waves_per_simd


def occupancy_for(
    config: KernelConfig,
    device: DeviceSpec,
    *,
    lds_bytes_per_group: int = 0,
) -> OccupancyResult:
    """Compute achieved residency for ``config`` on ``device``.

    Raises :class:`ValueError` for configurations that cannot run at all
    (work-group larger than the device limit, or register demand exceeding
    the per-lane register file).
    """
    wg_size = config.work_group_size
    if wg_size > device.max_work_group_size:
        raise ValueError(
            f"work-group size {wg_size} exceeds device limit "
            f"{device.max_work_group_size}"
        )
    regs = config.registers_per_item
    if regs > device.vgprs_per_lane:
        raise ValueError(
            f"configuration {config} needs {regs} registers/lane; device "
            f"register file holds {device.vgprs_per_lane}"
        )

    waves_per_group = ceil_div(wg_size, device.wavefront_size)

    # Register limit: how many waves' register demand fits one SIMD's file.
    reg_limited = device.vgprs_per_lane // regs

    # LDS limit: groups per CU capped by local memory, expressed in waves.
    # Kernels using no LDS are unconstrained (sentinel far above any real
    # wave budget so the limiting-resource report stays meaningful).
    if lds_bytes_per_group > 0:
        groups_per_cu_lds = device.lds_bytes_per_cu // lds_bytes_per_group
        lds_limited_cu_waves = groups_per_cu_lds * waves_per_group
        lds_limited = max(0, lds_limited_cu_waves // device.simds_per_cu)
    else:
        lds_limited = 1 << 30

    # A whole work-group must be resident on one CU: its waves occupy the
    # CU's SIMDs, so residency cannot be finer than one group's waves
    # spread over the SIMDs.
    group_min_waves = ceil_div(waves_per_group, device.simds_per_cu)

    candidates = {
        "registers": reg_limited,
        "lds": lds_limited,
        "wave-slots": device.max_waves_per_simd,
    }
    limited_by = min(candidates, key=lambda k: candidates[k])
    waves = candidates[limited_by]

    if waves < group_min_waves:
        # Residency fell below what a single work-group needs.  A group is
        # still launchable when its registers fit the files and its LDS
        # fits one CU (LDS is a per-CU resource, so the per-SIMD wave
        # quotient above can floor to zero even though one group fits).
        one_group_fits = (
            reg_limited >= group_min_waves
            and lds_bytes_per_group <= device.lds_bytes_per_cu
        )
        if one_group_fits:
            waves = group_min_waves
            limited_by = "group-size"
        else:
            raise ValueError(
                f"configuration {config} cannot fit one work-group on a CU "
                f"of device {device.name!r}"
            )

    waves = min(waves, device.max_waves_per_simd)
    return OccupancyResult(
        waves_per_simd=int(waves),
        max_waves_per_simd=device.max_waves_per_simd,
        limited_by=limited_by,
        waves_per_group=waves_per_group,
    )
