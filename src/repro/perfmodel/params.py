"""Tunable constants of the analytical performance model."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PerfModelParams"]


@dataclass(frozen=True)
class PerfModelParams:
    """Model constants, with defaults tuned for GCN3-class GPUs.

    These are deliberately exposed as data: the portability experiments
    re-use the same model code with different constants, and the ablation
    benchmarks sweep individual constants to show which structural effects
    each one produces.
    """

    #: Cycles before an FMA result may feed a dependent FMA.
    fma_latency_cycles: float = 8.0
    #: Scalar/address/branch instructions charged per inner-loop iteration.
    loop_overhead_instructions: float = 6.0
    #: Instructions charged per vector memory operation issued.
    instructions_per_load: float = 1.0
    #: Wavefronts per SIMD at which latency hiding reaches 50% efficacy.
    latency_hiding_half_waves: float = 2.5
    #: Lognormal sigma of per-measurement noise (dimensionless).
    noise_sigma: float = 0.035
    #: Relative magnitude of deterministic alignment/bank-conflict effects.
    #: Calibrated so the dataset reproduces the paper's structure (see
    #: DESIGN.md section 5): a long tail of shape-specific winners and
    #: pruning ceilings in the low-to-mid 90s.
    alignment_penalty: float = 0.15
    #: Weight of the coarse (feature-learnable) quirk component; the fine
    #: (alignment-residue) component gets 1 - this weight.
    quirk_coarse_weight: float = 0.5
    #: Log2 bucket width of the coarse quirk: larger steps mean broader
    #: shape families sharing the same idiosyncrasies.
    quirk_coarse_log_step: float = 2.0
    #: Penalty multiplier applied to DRAM channel-camping access patterns.
    channel_camping_penalty: float = 0.25
    #: Fraction of the L2 usable for GEMM operand reuse.
    l2_usable_fraction: float = 0.75
    #: Minimum achievable coalescing efficiency (fully scattered accesses).
    min_coalescing_efficiency: float = 0.12
    #: Seconds of fixed driver/runtime overhead added to every launch, on
    #: top of the device's kernel_launch_overhead_us.
    host_overhead_s: float = 2.0e-6
    #: Host-to-device copy bandwidth (PCIe-class interconnect), GB/s.
    h2d_bandwidth_gbps: float = 12.0
    #: Device-to-host readback bandwidth, GB/s.  Readback is markedly
    #: slower than upload (the SUMMA memcpy calibration measures ~3x),
    #: so result copies hurt more per byte than operand staging.
    d2h_bandwidth_gbps: float = 4.0
    #: Fixed H2D setup latency per staged copy (driver round trip),
    #: seconds.  Transfers are staged per macro-tile panel, so a config
    #: with small macro tiles pays this many times over — the SUMMA
    #: small-memcpy penalty.
    h2d_overhead_s: float = 2.0e-6
    #: Fixed D2H setup latency per staged copy, seconds.  Readback also
    #: pays a completion sync, so its floor is higher than upload's.
    d2h_overhead_s: float = 4.0e-6
    #: Fraction of kernel time usable for hiding pipelined transfers
    #: (0 = fully serialized phases, 1 = transfers fully hidden while
    #: any compute remains).
    transfer_overlap: float = 0.6

    def __post_init__(self) -> None:
        positives = (
            "fma_latency_cycles",
            "latency_hiding_half_waves",
            "l2_usable_fraction",
            "min_coalescing_efficiency",
            "h2d_bandwidth_gbps",
            "d2h_bandwidth_gbps",
        )
        for name in positives:
            if getattr(self, name) <= 0:
                raise ValueError(f"PerfModelParams.{name} must be positive")
        non_negatives = (
            "loop_overhead_instructions",
            "instructions_per_load",
            "noise_sigma",
            "alignment_penalty",
            "channel_camping_penalty",
            "host_overhead_s",
            "h2d_overhead_s",
            "d2h_overhead_s",
        )
        for name in non_negatives:
            if getattr(self, name) < 0:
                raise ValueError(f"PerfModelParams.{name} must be >= 0")
        if self.l2_usable_fraction > 1.0:
            raise ValueError("PerfModelParams.l2_usable_fraction must be <= 1")
        if self.min_coalescing_efficiency > 1.0:
            raise ValueError("PerfModelParams.min_coalescing_efficiency must be <= 1")
        if not 0.0 <= self.quirk_coarse_weight <= 1.0:
            raise ValueError("PerfModelParams.quirk_coarse_weight must be in [0, 1]")
        if self.quirk_coarse_log_step <= 0:
            raise ValueError("PerfModelParams.quirk_coarse_log_step must be positive")
        if not 0.0 <= self.transfer_overlap <= 1.0:
            raise ValueError("PerfModelParams.transfer_overlap must be in [0, 1]")
