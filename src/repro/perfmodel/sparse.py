"""Performance model for GEMM with a sparse (CSR) weight operand.

Extends the dense model with the three first-order effects of running a
register-tiled kernel over compressed weights:

* **compute** — only ``density`` of the multiply-accumulates remain, but
  index decoding and gather addressing add work per nonzero, and the
  wider the accumulator step (``acc``) the worse the gather penalty (a
  dense vector load becomes ``acc`` dependent gathers);
* **memory** — the B operand shrinks to ``density`` of its values but
  each nonzero carries an index (8 B/nz vs 4 B dense), and gathered
  access wastes cacheline transfer;
* **load imbalance** — rows of a pruned matrix have uneven populations,
  so wavefronts finish at the slowest lane; the imbalance term grows as
  density falls.

The upshot — matching what sparse-kernel practice shows — is that the
*optimal configuration shifts* with density (toward smaller ``acc`` and
smaller tiles), which is precisely why the paper flags sparse
generalisation as an open question for a selector trained on dense data.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.params import KernelConfig
from repro.perfmodel.model import GemmPerfModel
from repro.perfmodel.noise import noise_factors
from repro.perfmodel.params import PerfModelParams
from repro.sycl.device import Device, DeviceSpec
from repro.workloads.gemm import GemmShape
from repro.workloads.sparse import SparseGemmShape

__all__ = ["SparseGemmPerfModel"]

_FP32 = 4
#: Extra bytes per nonzero for the column index (CSR).
_INDEX_BYTES = 4


class SparseGemmPerfModel:
    """Timing model accepting dense and sparse shapes uniformly."""

    def __init__(
        self,
        device: Device | DeviceSpec,
        *,
        params: Optional[PerfModelParams] = None,
        seed: int = 2020,
        #: Index-decode instructions charged per nonzero, as a fraction
        #: of an FMA.
        decode_cost: float = 0.5,
        #: Gather penalty coefficient (scales with acc and sparsity).
        gather_cost: float = 0.35,
        #: Load-imbalance coefficient (wave divergence at low density).
        imbalance_cost: float = 0.6,
    ):
        for name, value in (
            ("decode_cost", decode_cost),
            ("gather_cost", gather_cost),
            ("imbalance_cost", imbalance_cost),
        ):
            if value < 0:
                raise ValueError(f"{name} must be >= 0")
        self._dense = GemmPerfModel(device, params=params, seed=seed)
        self._decode = decode_cost
        self._gather = gather_cost
        self._imbalance = imbalance_cost
        self._seed = int(seed)

    @property
    def dense_model(self) -> GemmPerfModel:
        return self._dense

    @property
    def params(self) -> PerfModelParams:
        return self._dense.params

    def supported(self, config: KernelConfig) -> bool:
        return self._dense.supported(config)

    # -- timing -----------------------------------------------------------

    def time_seconds(self, shape: GemmShape, config: KernelConfig) -> float:
        density = getattr(shape, "density", 1.0)
        dense_shape = (
            shape.dense_equivalent()
            if isinstance(shape, SparseGemmShape)
            else shape
        )
        breakdown = self._dense.breakdown(dense_shape, config)
        if density >= 1.0:
            return breakdown.total_seconds

        # Compute: density of the FMAs survive, each carrying decode
        # work; gathers hurt wide accumulator steps; stragglers stretch
        # the wave by the imbalance term.
        sparsity = 1.0 - density
        work_scale = density * (1.0 + self._decode)
        gather_scale = 1.0 + self._gather * sparsity * (config.acc / 8.0)
        imbalance_scale = 1.0 + self._imbalance * sparsity
        compute = (
            breakdown.compute_seconds
            * work_scale
            * gather_scale
            * imbalance_scale
        )

        # Memory: the B share of traffic shrinks to density but carries
        # indices; gathered lines are partially wasted (folded into the
        # index overhead constant).
        m, k, n = dense_shape.m, dense_shape.k, dense_shape.n
        b_share = (k * n) / (m * k + k * n + m * n)
        sparse_bytes_ratio = density * (_FP32 + _INDEX_BYTES) / _FP32
        memory_scale = (1.0 - b_share) + b_share * sparse_bytes_ratio
        memory = breakdown.memory_seconds * memory_scale

        return (
            breakdown.overhead_seconds
            + max(compute, memory)
            + 0.15 * min(compute, memory)
        )

    def gflops(self, shape: GemmShape, config: KernelConfig) -> float:
        """Useful (nonzero) FLOPs over modelled time."""
        return shape.flops / self.time_seconds(shape, config) / 1e9

    def measured_times_seconds(
        self,
        shape: GemmShape,
        config: KernelConfig,
        *,
        iterations: int,
        start_iteration: int = 0,
    ) -> np.ndarray:
        factors = noise_factors(
            self._seed,
            shape,
            config,
            iterations,
            sigma=self.params.noise_sigma,
            start_iteration=start_iteration,
        )
        return self.time_seconds(shape, config) * factors

    def measured_time_seconds(
        self, shape: GemmShape, config: KernelConfig, *, iteration: int = 0
    ) -> float:
        return float(
            self.measured_times_seconds(
                shape, config, iterations=1, start_iteration=iteration
            )[0]
        )
