"""Memory-system model: traffic volumes and access efficiency.

Work-group tiling determines how often each operand is re-read: a group
computing a ``macro_m x macro_n`` output tile reads a ``macro_m x K`` slab
of A and a ``K x macro_n`` slab of B.  Summed over all groups this is the
well-known ``M*K*(N/macro_n) + K*N*(M/macro_m)`` re-read volume, which the
L2 partially absorbs depending on whether operand slabs stay resident.

Coalescing: work-items are linearised with the column dimension fastest
(SYCL's dim-1), so consecutive lanes of a wavefront hold consecutive
column indices.  Wide ``wg_cols`` makes B loads and C stores contiguous
across the wave; tall, thin groups ((64,1), (128,1)) serialise them into
per-lane cacheline transactions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.params import KernelConfig
from repro.perfmodel.params import PerfModelParams
from repro.sycl.device import DeviceSpec
from repro.utils.maths import ceil_div
from repro.workloads.gemm import GemmShape

__all__ = ["MemoryTraffic", "memory_traffic"]

_FP32 = 4  # bytes


@dataclass(frozen=True)
class MemoryTraffic:
    """Traffic volumes (bytes) and access efficiency for one launch."""

    #: Loads/stores issued to the cache hierarchy by all groups.
    l2_bytes: int
    #: Estimated bytes that miss L2 and reach DRAM.
    dram_bytes: float
    #: Lower bound: every operand element moved exactly once.
    compulsory_bytes: int
    #: Effective fraction of DRAM bandwidth usable given the access
    #: pattern (coalescing x channel balance), in (0, 1].
    access_efficiency: float

    @property
    def l2_hit_rate(self) -> float:
        if self.l2_bytes == 0:
            return 1.0
        return 1.0 - self.dram_bytes / self.l2_bytes


def memory_traffic(
    shape: GemmShape,
    config: KernelConfig,
    device: DeviceSpec,
    params: PerfModelParams,
) -> MemoryTraffic:
    """Model operand traffic for one GEMM launch."""
    m, k, n, batch = shape.m, shape.k, shape.n, shape.batch
    macro_m, macro_n = config.macro_tile
    groups_m = ceil_div(m, macro_m)
    groups_n = ceil_div(n, macro_n)

    # -- volumes ----------------------------------------------------------
    # Within a group, work-items sharing a tile row read the same A values
    # (broadcast) and likewise for B down a column, so per-group traffic is
    # the slab, not slab * items.
    a_slab = macro_m * k * _FP32
    b_slab = k * macro_n * _FP32
    c_tile = macro_m * macro_n * _FP32
    per_batch_l2 = groups_m * groups_n * (a_slab + b_slab + c_tile)
    l2_bytes = batch * per_batch_l2

    compulsory = batch * (m * k + k * n + m * n) * _FP32

    # -- L2 reuse ---------------------------------------------------------
    # Groups executing concurrently sweep B stripes; if an entire operand
    # fits in the usable L2 it is fetched from DRAM once, otherwise the
    # re-read volume leaks through.  Interpolate by the resident fraction.
    usable_l2 = params.l2_usable_fraction * device.l2_bytes
    operand_bytes = (m * k + k * n) * _FP32  # per batch; batches evict
    resident_fraction = min(1.0, usable_l2 / operand_bytes)
    dram_bytes = compulsory + (l2_bytes - compulsory) * (1.0 - resident_fraction)

    # -- coalescing -------------------------------------------------------
    # Lanes adjacent in a wavefront differ in the column coordinate first.
    # For B loads / C stores, one row of work-items covers
    # wg_cols * cols consecutive floats; the fraction of each cacheline
    # transaction that is useful is that span over the cacheline.
    row_span_bytes = config.wg_cols * config.cols * _FP32
    eff_bc = min(1.0, row_span_bytes / device.cacheline_bytes)
    # A loads move down rows: each lane reads `acc` consecutive floats of
    # its own row, a strided pattern whose per-transaction utility is the
    # per-lane vector width over the cacheline -- but consecutive k-steps
    # consume the rest of the line from L1, so charge square-root decay
    # rather than the full penalty.
    eff_a = min(1.0, (config.acc * _FP32 / device.cacheline_bytes) ** 0.5)

    a_share = a_slab / (a_slab + b_slab + c_tile)
    bc_share = 1.0 - a_share
    access_efficiency = a_share * eff_a + bc_share * eff_bc
    access_efficiency = max(params.min_coalescing_efficiency, access_efficiency)

    # -- channel camping ---------------------------------------------------
    # Power-of-two leading dimensions map consecutive B rows onto the same
    # DRAM channel; tall-thin groups then hammer one channel.  This is the
    # kind of idiosyncratic effect that gives real datasets their "niche
    # winner" structure.
    ld_bytes = n * _FP32
    if ld_bytes % 1024 == 0 and config.wg_cols <= 2:
        access_efficiency *= 1.0 - params.channel_camping_penalty

    return MemoryTraffic(
        l2_bytes=int(l2_bytes),
        dram_bytes=float(dram_bytes),
        compulsory_bytes=int(compulsory),
        access_efficiency=float(access_efficiency),
    )
