"""Analytical GPU performance model for the tiled GEMM kernel.

This package is the stand-in for the paper's benchmark platform (an AMD R9
Nano).  Given a :class:`~repro.workloads.gemm.GemmShape` and a
:class:`~repro.kernels.params.KernelConfig`, it predicts kernel execution
time from first principles:

* **occupancy** — resident wavefronts per SIMD limited by register
  pressure, local memory and the device wave budget
  (:mod:`repro.perfmodel.occupancy`);
* **compute pipeline** — FMA issue rate degraded by loop overhead, limited
  instruction-level parallelism and insufficient latency hiding
  (:mod:`repro.perfmodel.compute`);
* **memory system** — DRAM traffic from work-group tiling with an L2
  reuse model, degraded by uncoalesced access patterns
  (:mod:`repro.perfmodel.memory`);
* **whole-kernel time** — roofline-style max of compute and memory time,
  tile-edge waste, wave quantisation, launch overhead, and deterministic
  alignment penalties (:mod:`repro.perfmodel.model`);
* **measurement noise** — reproducible lognormal jitter per
  (shape, config, iteration) (:mod:`repro.perfmodel.noise`).

The model is *not* calibrated to match the R9 Nano's absolute GFLOP/s; it
is calibrated to reproduce the **structure** of the paper's dataset — see
DESIGN.md section 5 for the calibration targets and
``tests/integration/test_dataset_structure.py`` for their enforcement.
"""

from repro.perfmodel.params import PerfModelParams
from repro.perfmodel.occupancy import OccupancyResult, occupancy_for
from repro.perfmodel.compute import (
    ComputeEfficiency,
    compute_efficiency,
    latency_hiding,
)
from repro.perfmodel.memory import MemoryTraffic, memory_traffic
from repro.perfmodel.transfer import (
    DataPlacement,
    TransferBreakdown,
    padded_operand_bytes,
    resolve_placement,
    transfer_copies,
    transfer_phases,
)
from repro.perfmodel.model import GemmPerfModel, ModelBreakdown
from repro.perfmodel.noise import measurement_noise_factor
from repro.perfmodel.sparse import SparseGemmPerfModel

__all__ = [
    "ComputeEfficiency",
    "DataPlacement",
    "GemmPerfModel",
    "MemoryTraffic",
    "ModelBreakdown",
    "OccupancyResult",
    "PerfModelParams",
    "SparseGemmPerfModel",
    "TransferBreakdown",
    "compute_efficiency",
    "latency_hiding",
    "measurement_noise_factor",
    "memory_traffic",
    "occupancy_for",
    "padded_operand_bytes",
    "resolve_placement",
    "transfer_copies",
    "transfer_phases",
]
