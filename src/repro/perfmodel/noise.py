"""Reproducible measurement noise.

Real benchmark numbers jitter run to run (DVFS, scheduling, memory
placement).  The paper's dataset therefore contains a noise floor that the
clustering and classification stages must tolerate; reproducing it matters
for the "long tail of winners" structure (58 distinct best configurations).

The noise is *counter-based*: one independent stream exists per
(seed, shape, config) pair, and iteration ``i`` consumes the i-th draw of
that stream.  Factors are pure functions of their coordinates, so dataset
generation is deterministic, order-independent and safely parallelisable —
no shared generator state (the HPC guide's determinism idiom).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.params import KernelConfig, config_index
from repro.utils.rng import stream
from repro.workloads.gemm import GemmShape

__all__ = ["measurement_noise_factor", "noise_factors"]


def _pair_stream(
    seed: int, shape: GemmShape, config: KernelConfig
) -> np.random.Generator:
    # Key on the full identity tuple so shape subclasses with extra
    # coordinates (e.g. sparse density) get independent streams.
    return stream(
        seed,
        "measurement-noise",
        *(int(v) for v in shape.as_tuple()),
        config_index(config),
    )


def noise_factors(
    seed: int,
    shape: GemmShape,
    config: KernelConfig,
    iterations: int,
    *,
    sigma: float,
    start_iteration: int = 0,
) -> np.ndarray:
    """Multiplicative lognormal factors for consecutive measurements.

    Returns factors for iterations ``start_iteration`` ..
    ``start_iteration + iterations - 1``.  Because iteration ``i`` is
    always the i-th draw of the pair's stream, the factor for a given
    iteration is independent of how many are requested at once.
    """
    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    if start_iteration < 0:
        raise ValueError(f"start_iteration must be >= 0, got {start_iteration}")
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if sigma == 0:
        return np.ones(iterations)
    z = _pair_stream(seed, shape, config).standard_normal(
        start_iteration + iterations
    )
    return np.exp(sigma * z[start_iteration:])


def measurement_noise_factor(
    seed: int,
    shape: GemmShape,
    config: KernelConfig,
    iteration: int,
    *,
    sigma: float,
) -> float:
    """The noise factor for one specific timing measurement."""
    return float(
        noise_factors(
            seed, shape, config, 1, sigma=sigma, start_iteration=iteration
        )[0]
    )
