"""Compute-pipeline efficiency of one kernel configuration.

Three effects degrade the FMA issue rate below peak:

1. **Loop overhead** — every inner-loop iteration spends instructions on
   loads, address arithmetic and the branch.  Larger tiles amortise this
   over more FMAs (the classic register-blocking win).
2. **Instruction-level parallelism** — an FMA chain onto a single
   accumulator stalls for the FMA latency.  The kernel has
   ``rows * cols`` independent accumulators providing independent chains.
3. **Latency hiding** — whatever stalls remain can be covered by switching
   to other resident wavefronts; effectiveness saturates with the number
   of waves *actually* resident per SIMD, which depends on the launch size
   (an underfilled launch leaves each SIMD a single wave even when the
   occupancy limit would allow more).

(1) and (2) depend only on the configuration and are cached per config;
(3) is evaluated by the whole-kernel model once the launch geometry is
known.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.params import KernelConfig
from repro.perfmodel.params import PerfModelParams

__all__ = ["ComputeEfficiency", "compute_efficiency", "latency_hiding"]


@dataclass(frozen=True)
class ComputeEfficiency:
    """Static (launch-independent) efficiency components, each in (0, 1]."""

    instruction_mix: float
    ilp: float

    @property
    def static_total(self) -> float:
        return self.instruction_mix * self.ilp


def compute_efficiency(
    config: KernelConfig,
    params: PerfModelParams,
) -> ComputeEfficiency:
    """Fraction of peak FMA rate the instruction stream can sustain."""
    rows, cols, acc = config.rows, config.cols, config.acc

    # 1. Instruction mix: FMAs vs everything else per inner-loop iteration.
    #    Per iteration a work-item performs rows*cols*acc FMAs, issues
    #    vector loads for its A and B slivers (vec: values moved per load
    #    instruction, bounded by the contiguous run available) and pays a
    #    fixed loop overhead.
    vec_a = min(4, acc)
    vec_b = min(4, cols)
    fma_instr = rows * cols * acc
    load_instr = params.instructions_per_load * (
        (rows * acc) / vec_a + (acc * cols) / vec_b
    )
    other = params.loop_overhead_instructions
    instruction_mix = fma_instr / (fma_instr + load_instr + other)

    # 2. ILP: independent accumulator chains inside one work-item.  A
    #    partially filled pipeline still progresses; soften the cliff.
    independent = rows * cols
    ilp = min(1.0, independent / params.fma_latency_cycles) ** 0.75

    return ComputeEfficiency(instruction_mix=instruction_mix, ilp=ilp)


def latency_hiding(
    resident_waves: float,
    ilp: float,
    params: PerfModelParams,
    *,
    max_waves: int,
) -> float:
    """Stall coverage from multithreading, given actual residency.

    ``resident_waves`` is the (possibly fractional, >= 1 for any non-empty
    launch) number of waves sharing one SIMD.  ILP inside a wave reduces
    the stall budget the waves must cover.  Normalised so a fully occupied
    device approaches 1.
    """
    if resident_waves < 1.0:
        raise ValueError(
            f"resident_waves must be >= 1 for a non-empty launch, "
            f"got {resident_waves}"
        )
    effective = resident_waves * (0.5 + 0.5 * ilp)
    hiding = effective / (effective + params.latency_hiding_half_waves)
    full = float(max_waves)
    hiding /= full / (full + params.latency_hiding_half_waves)
    return min(1.0, hiding)
