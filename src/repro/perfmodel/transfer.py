"""Host<->device transfer phases of the performance model.

Models the three-phase structure of a host-resident GEMM launch — H2D
operand copies, the kernel itself, and the D2H result copy — in the
spirit of the SUMMA memcpy model: a fixed per-transfer setup overhead
plus bytes over a per-direction bandwidth, with readback markedly
slower than upload, and pipelined transfers partially hidden behind
compute.

The config-dependence that makes placement matter for *selection*:

* the kernel reads and writes operands padded to macro-tile boundaries
  (edge work-groups load full tiles through bounds-checked windows), so
  a staging copy sized for the launch moves ``padded_m x k`` and
  ``k x padded_n`` bytes — a large macro-tile config transfers more of
  a small problem than a small-tile config does;
* transfers are staged per macro-tile *panel* (operand row/column
  panels up, result row panels back), and every copy pays a fixed
  driver setup latency — so a small macro-tile config launches many
  tiny latency-bound memcpys where a large one amortises the setup
  over few big ones, exactly the small-copy penalty the SUMMA work
  measured;
* only *streamed* bytes can hide behind compute, bounded by an overlap
  budget proportional to kernel time, and a result copy can only
  overlap the kernel while later batch elements are still computing —
  a single GEMM (``batch == 1``) exposes its full readback.

Padding punishes oversized macro tiles on small problems; per-copy
latency punishes undersized macro tiles on large ones.  The host-side
optimum therefore depends on the shape and rarely coincides with the
device-side optimum, which is what makes placement a selection feature
rather than a constant offset.

Device-resident shapes skip all of this: the model is bit-identical to
the transfer-free model for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.kernels.params import KernelConfig
from repro.perfmodel.params import PerfModelParams
from repro.utils.maths import ceil_div
from repro.workloads.gemm import GemmShape
from repro.workloads.placement import DataPlacement

__all__ = [
    "DataPlacement",
    "TransferBreakdown",
    "padded_operand_bytes",
    "resolve_placement",
    "transfer_copies",
    "transfer_phases",
]

_FP32 = 4


def resolve_placement(shape: GemmShape) -> str:
    """The operand placement a shape declares (device when unannotated)."""
    return DataPlacement.parse(
        getattr(shape, "placement", DataPlacement.DEVICE)
    ).value


def padded_operand_bytes(
    shape: GemmShape, config: KernelConfig
) -> Tuple[int, int]:
    """(H2D, D2H) bytes of a staged launch, padded to macro tiles.

    A and B are uploaded, C is read back; each output dimension is
    rounded up to the config's macro-tile coverage (the same padding
    that drives ``tile_utilization`` in the kernel-time model).
    """
    macro_m, macro_n = config.macro_tile
    padded_m = ceil_div(shape.m, macro_m) * macro_m
    padded_n = ceil_div(shape.n, macro_n) * macro_n
    h2d = _FP32 * shape.batch * (padded_m * shape.k + shape.k * padded_n)
    d2h = _FP32 * shape.batch * padded_m * padded_n
    return h2d, d2h


def transfer_copies(shape: GemmShape, config: KernelConfig) -> Tuple[int, int]:
    """(H2D, D2H) staged copy counts for one launch.

    A is uploaded per macro-row panel and B per macro-column panel
    (``groups_m + groups_n`` copies per batch element); C is read back
    per macro-row panel (``groups_m`` copies).  Each copy pays the
    per-direction setup latency in :func:`transfer_phases`.
    """
    macro_m, macro_n = config.macro_tile
    groups_m = ceil_div(shape.m, macro_m)
    groups_n = ceil_div(shape.n, macro_n)
    h2d = shape.batch * (groups_m + groups_n)
    d2h = shape.batch * groups_m
    return h2d, d2h


@dataclass(frozen=True)
class TransferBreakdown:
    """The transfer phases of one host-resident launch."""

    h2d_bytes: int
    d2h_bytes: int
    #: Staged copy counts per direction (panel-wise memcpys).
    h2d_copies: int
    d2h_copies: int
    #: Full (unhidden) per-direction times, setup latencies included.
    h2d_seconds: float
    d2h_seconds: float
    #: Transfer time overlapped with compute, never exceeding the
    #: streamed (non-overhead) portion of either direction.
    hidden_seconds: float

    @property
    def visible_seconds(self) -> float:
        """Transfer time that extends the end-to-end launch."""
        return self.h2d_seconds + self.d2h_seconds - self.hidden_seconds


def transfer_phases(
    shape: GemmShape,
    config: KernelConfig,
    params: PerfModelParams,
    *,
    kernel_seconds: float,
) -> TransferBreakdown:
    """Model the H2D / D2H phases around one kernel execution.

    The overlap budget is ``transfer_overlap * kernel_seconds`` of
    compute time available to hide streamed bytes.  Uploads claim it
    first (operand prefetch for later k-panels and batch elements);
    readback can only hide the fraction of C produced before the last
    batch element finishes, so ``batch == 1`` exposes the whole D2H
    stream.  Per-copy setup latencies are driver round trips and are
    never hidden.
    """
    if kernel_seconds < 0:
        raise ValueError(
            f"kernel_seconds must be >= 0, got {kernel_seconds}"
        )
    h2d_bytes, d2h_bytes = padded_operand_bytes(shape, config)
    h2d_copies, d2h_copies = transfer_copies(shape, config)
    h2d_stream = h2d_bytes / (params.h2d_bandwidth_gbps * 1e9)
    d2h_stream = d2h_bytes / (params.d2h_bandwidth_gbps * 1e9)
    budget = params.transfer_overlap * kernel_seconds
    h2d_hidden = min(h2d_stream, budget)
    budget -= h2d_hidden
    d2h_hidden = min(d2h_stream * (1.0 - 1.0 / shape.batch), budget)
    return TransferBreakdown(
        h2d_bytes=h2d_bytes,
        d2h_bytes=d2h_bytes,
        h2d_copies=h2d_copies,
        d2h_copies=d2h_copies,
        h2d_seconds=h2d_copies * params.h2d_overhead_s + h2d_stream,
        d2h_seconds=d2h_copies * params.d2h_overhead_s + d2h_stream,
        hidden_seconds=h2d_hidden + d2h_hidden,
    )
