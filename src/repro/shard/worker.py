"""The shard worker: one process, one full serving replica.

:func:`worker_main` is the child-process entry point.  It rebuilds the
entire serving stack from the mapped artifact named in its
:class:`~repro.shard.protocol.WorkerSpec` — digest-verified, zero-copy,
no pickle — then answers ``select`` batches with indices into the
shared pruned library and ships obs metrics as incremental snapshot
deltas (:class:`~repro.obs.aggregate.SnapshotDeltaTracker`), so the
front door's merged registry stays exact no matter how replies
interleave.

Everything the worker imports is imported at module level: under the
``fork`` start method the child never takes the import lock, and under
``spawn``/``forkserver`` the module re-imports cleanly.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict, List

from repro.kernels.params import KernelConfig
from repro.obs.aggregate import SnapshotDeltaTracker
from repro.obs.registry import MetricsRegistry
from repro.pipeline.mapped import load_mapped_selector, mapped_digest
from repro.serving.service import SelectionService
from repro.shard.protocol import WorkerSpec
from repro.workloads.gemm import GemmShape

__all__ = ["worker_main"]


def _build_service(spec: WorkerSpec, registry: MetricsRegistry):
    """The worker's serving stack plus the config -> index table."""
    directory = Path(spec.mapped_dir)
    if spec.digest is not None and spec.verify:
        actual = mapped_digest(directory)
        if actual != spec.digest:
            from repro.pipeline.mapped import MappedIntegrityError

            raise MappedIntegrityError(
                f"worker {spec.name}: mapped artifact at {directory} has "
                f"digest {actual[:12]}..., front door expects "
                f"{spec.digest[:12]}..."
            )
    deployed = load_mapped_selector(
        directory, mmap=spec.mmap, verify=spec.verify
    )
    policy: Any = deployed.compiled() if spec.compiled else deployed
    service = SelectionService(
        policy,
        capacity=spec.cache_capacity,
        fallback=deployed.library.configs[0],
        registry=registry,
        name=spec.name,
    )
    index: Dict[KernelConfig, int] = {
        config: i for i, config in enumerate(deployed.library.configs)
    }
    return service, index


def worker_main(conn: Any, spec: WorkerSpec) -> None:
    """Serve select/snapshot/ping requests until ``stop`` or EOF.

    Any startup failure — a corrupted mapped artifact most importantly
    — is reported as a ``("fatal", message)`` handshake so the front
    door can raise a clean error instead of diagnosing a dead pipe.
    """
    registry = MetricsRegistry()
    tracker = SnapshotDeltaTracker(registry)
    try:
        service, index = _build_service(spec, registry)
        digest = spec.digest or mapped_digest(Path(spec.mapped_dir))
    except BaseException as exc:  # noqa: BLE001 - reported, then exit
        try:
            conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ready", spec.name, os.getpid(), digest))
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            kind = message[0]
            if kind == "select":
                _, req_id, keys = message
                shapes = [GemmShape(*key) for key in keys]
                configs = service.select_batch(shapes)
                answer: List[int] = [index[config] for config in configs]
                conn.send(("ok", req_id, answer))
            elif kind == "snapshot":
                conn.send(("snapshot", message[1], tracker.delta()))
            elif kind == "ping":
                conn.send(("pong", message[1]))
            elif kind == "stop":
                conn.send(("stopped", tracker.delta()))
                break
            else:
                conn.send(("fatal", f"unknown message kind {kind!r}"))
                break
    except BaseException as exc:  # noqa: BLE001 - reported, then exit
        try:
            conn.send(("fatal", f"{type(exc).__name__}: {exc}"))
        except (OSError, BrokenPipeError):
            pass
    finally:
        conn.close()
