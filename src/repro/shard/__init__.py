"""repro.shard — process-parallel sharded serving.

One front door (:class:`ShardedFleet`) owns N worker processes, each
hosting a full :class:`~repro.serving.service.SelectionService` replica
built from the same zero-copy mapped selector artifact
(:mod:`repro.pipeline.mapped`).  Traffic shards by shape hash,
concurrent callers micro-batch before dispatch, dead workers restart
with their in-flight shapes rerouted, and every worker ships obs
snapshot deltas back to one fleet-wide registry — the horizontal-scale
layer ROADMAP item 5 asks for.
"""

from repro.shard.fleet import ShardedFleet, ShardStats, WorkerStartupError
from repro.shard.protocol import WorkerSpec, shard_of

__all__ = [
    "ShardedFleet",
    "ShardStats",
    "WorkerSpec",
    "WorkerStartupError",
    "shard_of",
]
