"""The sharded front door: N worker processes behind one select().

:class:`ShardedFleet` owns a pool of worker processes (each a full
:class:`~repro.serving.service.SelectionService` replica rebuilt from
the same digest-verified mapped artifact) and presents the router
surface the load harness already speaks: ``select`` returning a
:class:`~repro.serving.router.RoutedDecision`, ``select_batch``,
``complete`` and a ``registry``.

Design, layer by layer:

* **Sharding** — shapes route to ``shard_of(key) % N``: the same shape
  always lands on the same worker, so per-worker snapshot caches stay
  hot and never duplicate across the fleet.
* **Micro-batching** — one dispatcher thread per worker owns that
  worker's pipe.  The first queued request starts a batch; the
  dispatcher then drains the queue for up to ``batch_wait_s`` (or until
  ``max_batch`` shapes) before flushing one ``select`` message, so K
  concurrent callers cost one IPC round trip, not K.
* **Failover** — any pipe failure or reply timeout marks the worker
  dead, restarts it (fresh process, same mapped bytes) and requeues the
  in-flight batch on a healthy slot: callers see ``rerouted=True``,
  never an error.  A heartbeat monitor pings idle workers so silent
  deaths are noticed without traffic.
* **Obs aggregation** — workers ship incremental
  :meth:`~repro.obs.registry.MetricsRegistry.snapshot` deltas
  (:class:`~repro.obs.aggregate.SnapshotDeltaTracker`) over the same
  pipe; :meth:`pull_metrics` merges them into the fleet registry, so
  ``merged_quantiles(fleet.registry, "serving.lookup_seconds")`` is the
  fleet-wide latency distribution and counter totals are exact.

The front door also keeps its own ``shard.requests`` / ``shard.decisions``
counters on the submit/resolve path — those are exact even when a
worker dies mid-batch and takes its unsent delta tail with it.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue
import shutil
import tempfile
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import MetricsRegistry
from repro.pipeline.mapped import read_mapped_meta
from repro.serving.router import RoutedDecision
from repro.shard.protocol import WorkerSpec, shard_of
from repro.shard.worker import worker_main
from repro.workloads.gemm import GemmShape

__all__ = ["ShardedFleet", "ShardStats", "WorkerStartupError"]

#: Bucket bounds for the micro-batch size histogram (shapes per flush).
_BATCH_SIZE_BOUNDS = tuple(float(2**i) for i in range(13))  # 1 .. 4096


class WorkerStartupError(RuntimeError):
    """A shard worker failed its startup handshake."""


class _Shutdown:
    """Queue sentinel: drain, stop the worker, exit the dispatcher."""


_SHUTDOWN = _Shutdown()


class _Item:
    """One submitted request group (all keys share a shard)."""

    __slots__ = ("keys", "n", "future", "rerouted")

    def __init__(self, keys: Tuple[Tuple[int, ...], ...], rerouted: bool):
        self.keys = keys
        self.n = len(keys)
        self.future: Future = Future()
        self.rerouted = rerouted


class _Control:
    """An in-band control request (serialized with traffic per slot)."""

    __slots__ = ("kind", "future")

    def __init__(self, kind: str):
        self.kind = kind
        self.future: Future = Future()


@dataclass(frozen=True)
class WorkerInfo:
    """One worker's externally visible state."""

    name: str
    pid: Optional[int]
    alive: bool
    restarts: int


@dataclass(frozen=True)
class ShardStats:
    """Fleet-wide counters plus the merged latency view."""

    workers: Tuple[WorkerInfo, ...]
    requests: int
    decisions: int
    rerouted: int
    restarts: int
    batches: int
    mean_batch_size: float
    dispatched: Dict[str, int]
    lookup_latency: Optional[Any]  # QuantileSummary
    request_latency: Optional[Any]  # QuantileSummary

    def render(self) -> str:
        alive = sum(1 for w in self.workers if w.alive)
        lines = [
            (
                f"fleet: {alive}/{len(self.workers)} workers alive, "
                f"{self.requests} requests -> {self.decisions} decisions "
                f"({self.rerouted} rerouted, {self.restarts} restarts)"
            ),
            (
                f"batching: {self.batches} flushes, mean batch "
                f"{self.mean_batch_size:.1f} shapes"
            ),
        ]
        if self.dispatched:
            per_worker = "  ".join(
                f"{name}={count}"
                for name, count in sorted(self.dispatched.items())
            )
            lines.append(f"dispatch: {per_worker}")
        if self.lookup_latency is not None:
            lines.append(
                f"fleet-wide lookup: {self.lookup_latency.render()}"
            )
        if self.request_latency is not None:
            lines.append(
                f"front-door request: {self.request_latency.render()}"
            )
        return "\n".join(lines)


class _Slot:
    """One worker process, its pipe, its queue, its dispatcher thread."""

    def __init__(self, fleet: "ShardedFleet", index: int):
        self.fleet = fleet
        self.index = index
        self.name = f"{fleet._name_prefix}{index}"
        self.queue: "queue.Queue" = queue.Queue()
        self.conn: Optional[Any] = None
        self.proc: Optional[Any] = None
        self.alive = False
        self.restarts = 0
        self.last_reply = time.monotonic()
        self._ping_pending = False
        self._req_ids = itertools.count()
        self.thread = threading.Thread(
            target=self._dispatch_loop, name=f"shard-{self.name}", daemon=True
        )

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    # -- worker lifecycle ----------------------------------------------------

    def start_worker(self) -> None:
        """Fork/spawn the worker and wait for its startup handshake."""
        fleet = self.fleet
        parent_conn, child_conn = fleet._ctx.Pipe()
        spec = WorkerSpec(
            name=self.name,
            mapped_dir=str(fleet._mapped_dir),
            digest=fleet.digest,
            compiled=fleet._compiled,
            cache_capacity=fleet._cache_capacity,
            verify=fleet._verify,
        )
        proc = fleet._ctx.Process(
            target=worker_main,
            args=(child_conn, spec),
            name=f"repro-shard-{self.name}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        try:
            if not parent_conn.poll(fleet._startup_timeout_s):
                raise WorkerStartupError(
                    f"worker {self.name} sent no handshake within "
                    f"{fleet._startup_timeout_s:.0f} s"
                )
            handshake = parent_conn.recv()
        except WorkerStartupError:
            parent_conn.close()
            proc.kill()
            proc.join(timeout=2.0)
            raise
        except (EOFError, OSError) as exc:
            parent_conn.close()
            proc.join(timeout=2.0)
            raise WorkerStartupError(
                f"worker {self.name} died during startup: {exc!r}"
            ) from exc
        if handshake[0] == "fatal":
            parent_conn.close()
            proc.join(timeout=2.0)
            raise WorkerStartupError(
                f"worker {self.name} failed to start: {handshake[1]}"
            )
        if handshake[0] != "ready":
            parent_conn.close()
            proc.kill()
            proc.join(timeout=2.0)
            raise WorkerStartupError(
                f"worker {self.name} sent unexpected handshake "
                f"{handshake[0]!r}"
            )
        self.conn = parent_conn
        self.proc = proc
        self.alive = True
        self.last_reply = time.monotonic()

    def _teardown_worker(self) -> None:
        self.alive = False
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        if self.proc is not None:
            if self.proc.is_alive():
                self.proc.kill()
            self.proc.join(timeout=2.0)

    # -- dispatcher ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        fleet = self.fleet
        while True:
            item = self.queue.get()
            if item is _SHUTDOWN:
                self._stop_worker()
                return
            if isinstance(item, _Control):
                self._handle_control(item)
                continue
            batch = [item]
            total = item.n
            controls: List[_Control] = []
            stop = False
            # Drain the immediate backlog without sleeping, then wait a
            # bounded window for stragglers — but only while the batch
            # is still small: a bulk submission past ``flush_min``
            # flushes at once instead of paying the wait.
            deadline = time.monotonic() + fleet._batch_wait_s
            while total < fleet._max_batch:
                try:
                    nxt = self.queue.get_nowait()
                except queue.Empty:
                    if total >= fleet._flush_min:
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        nxt = self.queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                if nxt is _SHUTDOWN:
                    stop = True
                    break
                if isinstance(nxt, _Control):
                    controls.append(nxt)
                    continue
                batch.append(nxt)
                total += nxt.n
            self._serve_batch(batch)
            for control in controls:
                self._handle_control(control)
            if stop:
                self._stop_worker()
                return

    def _roundtrip(self, request: Tuple[Any, ...], req_id: int) -> Any:
        """One request/reply exchange; raises on any transport fault."""
        conn = self.conn
        if conn is None:
            raise OSError(f"worker {self.name} has no live connection")
        conn.send(request)
        if not conn.poll(self.fleet._request_timeout_s):
            raise TimeoutError(
                f"worker {self.name} sent no reply within "
                f"{self.fleet._request_timeout_s:.0f} s"
            )
        reply = conn.recv()
        if reply[0] == "fatal":
            raise RuntimeError(f"worker {self.name} fatal: {reply[1]}")
        if len(reply) > 1 and reply[1] != req_id:
            raise RuntimeError(
                f"worker {self.name} protocol error: reply "
                f"{reply[0]!r}/{reply[1]} to request {req_id}"
            )
        self.last_reply = time.monotonic()
        return reply

    def _serve_batch(self, batch: List[_Item]) -> None:
        fleet = self.fleet
        keys: List[Tuple[int, ...]] = []
        for item in batch:
            keys.extend(item.keys)
        req_id = next(self._req_ids)
        try:
            reply = self._roundtrip(("select", req_id, keys), req_id)
        except (OSError, EOFError, BrokenPipeError, TimeoutError, RuntimeError) as exc:
            self._worker_failed(batch, exc)
            return
        indices = reply[2]
        fleet._c_batches.inc()
        fleet._h_batch_size.observe(float(len(keys)))
        fleet._dispatched_counter(self.name).inc(len(keys))
        position = 0
        library = fleet.library
        for item in batch:
            chosen = tuple(
                library[i] for i in indices[position : position + item.n]
            )
            position += item.n
            fleet._c_decisions.inc(item.n)
            item.future.set_result((self.index, chosen, item.rerouted))

    def _handle_control(self, control: _Control) -> None:
        fleet = self.fleet
        req_id = next(self._req_ids)
        try:
            if control.kind == "snapshot":
                reply = self._roundtrip(("snapshot", req_id), req_id)
                fleet.registry.merge_snapshot(reply[2])
                control.future.set_result(True)
            elif control.kind == "ping":
                self._roundtrip(("ping", req_id), req_id)
                self._ping_pending = False
                control.future.set_result(True)
            else:  # pragma: no cover - internal misuse
                control.future.set_result(False)
        except (OSError, EOFError, BrokenPipeError, TimeoutError, RuntimeError) as exc:
            self._ping_pending = False
            control.future.set_result(False)
            self._worker_failed([], exc)

    def _worker_failed(self, batch: List[_Item], exc: BaseException) -> None:
        """Failover: tear down, restart, reroute the in-flight batch."""
        fleet = self.fleet
        was_alive = self.alive
        self._teardown_worker()
        if was_alive:
            fleet._g_alive.dec()
        restarted = False
        if fleet._restart and not fleet._closing:
            try:
                self.start_worker()
                restarted = True
                self.restarts += 1
                fleet._c_restarts.inc()
                fleet._g_alive.inc()
            except WorkerStartupError:
                restarted = False
        if not batch:
            return
        rerouted = sum(item.n for item in batch)
        fleet._c_rerouted.inc(rerouted)
        target = fleet._healthy_slot(exclude=self.index)
        if target is None and restarted:
            target = self
        for item in batch:
            item.rerouted = True
            if target is None:
                item.future.set_exception(
                    RuntimeError(
                        f"no healthy shard workers left "
                        f"(last failure on {self.name}: {exc})"
                    )
                )
            else:
                target.queue.put(item)

    def _stop_worker(self) -> None:
        """Graceful drain: final metrics delta, then a clean exit."""
        fleet = self.fleet
        if self.conn is not None and self.alive:
            try:
                self.conn.send(("stop",))
                if self.conn.poll(2.0):
                    reply = self.conn.recv()
                    if reply[0] == "stopped":
                        fleet.registry.merge_snapshot(reply[1])
            except (OSError, EOFError, BrokenPipeError):
                pass
        self._teardown_worker()


class ShardedFleet:
    """N selector worker processes behind one routed ``select`` surface.

    Built from a mapped selector layout (see
    :func:`repro.pipeline.mapped.write_mapped_selector`); every worker
    maps the same bytes read-only, so memory cost is one tree no matter
    how many processes serve it.  Duck-types the
    :class:`~repro.serving.router.FleetRouter` surface the load harness
    uses (``select``/``select_batch``/``complete``/``registry``).
    """

    def __init__(
        self,
        mapped_dir: Path,
        *,
        processes: int = 2,
        compiled: bool = False,
        cache_capacity: int = 4096,
        batch_wait_s: float = 0.0005,
        max_batch: int = 512,
        flush_min: int = 32,
        request_timeout_s: float = 30.0,
        startup_timeout_s: float = 60.0,
        heartbeat_interval_s: float = 1.0,
        restart: bool = True,
        verify: bool = True,
        registry: Optional[MetricsRegistry] = None,
        mp_context: Optional[Any] = None,
        name_prefix: str = "worker",
        _owned_tempdir: Optional[Path] = None,
    ):
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._mapped_dir = Path(mapped_dir)
        self._owned_tempdir = _owned_tempdir
        meta = read_mapped_meta(self._mapped_dir)
        #: The digest every worker must agree on before serving.
        self.digest: str = str(meta["digest"])
        #: The shared pruned library; workers answer indices into it.
        self.library: Tuple[Any, ...] = tuple(meta["pruned"].configs)
        self._compiled = compiled
        self._cache_capacity = cache_capacity
        self._batch_wait_s = batch_wait_s
        self._max_batch = max_batch
        self._flush_min = max(1, min(flush_min, max_batch))
        self._request_timeout_s = request_timeout_s
        self._startup_timeout_s = startup_timeout_s
        self._heartbeat_interval_s = heartbeat_interval_s
        self._restart = restart
        self._verify = verify
        self._name_prefix = name_prefix
        self._closing = False
        self.registry = registry if registry is not None else MetricsRegistry()
        if isinstance(mp_context, str):
            self._ctx = multiprocessing.get_context(mp_context)
        elif mp_context is not None:
            self._ctx = mp_context
        elif "fork" in multiprocessing.get_all_start_methods():
            self._ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX fallback
            self._ctx = multiprocessing.get_context()

        reg = self.registry
        self._c_requests = reg.counter("shard.requests")
        self._c_decisions = reg.counter("shard.decisions")
        self._c_rerouted = reg.counter("shard.rerouted")
        self._c_restarts = reg.counter("shard.restarts")
        self._c_batches = reg.counter("shard.batches")
        self._h_batch_size = reg.histogram(
            "shard.batch_size", bounds=_BATCH_SIZE_BOUNDS
        )
        self._h_request = reg.histogram("shard.request_seconds")
        reg.gauge("shard.workers").set(processes)
        self._g_alive = reg.gauge("shard.workers_alive")

        self._slots = [_Slot(self, i) for i in range(processes)]
        started: List[_Slot] = []
        try:
            for slot in self._slots:
                slot.start_worker()
                started.append(slot)
                self._g_alive.inc()
        except WorkerStartupError:
            for slot in started:
                slot._teardown_worker()
            self._cleanup_tempdir()
            raise
        for slot in self._slots:
            slot.thread.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-monitor", daemon=True
        )
        self._monitor.start()

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_deployed(
        cls, deployed: Any, **kwargs: Any
    ) -> "ShardedFleet":
        """Export ``deployed`` to a private mapped layout and serve it.

        The temporary export directory belongs to the fleet and is
        removed by :meth:`close`.
        """
        from repro.pipeline.mapped import write_mapped_selector

        tempdir = Path(tempfile.mkdtemp(prefix="repro-shard-"))
        write_mapped_selector(deployed, tempdir / "selector")
        return cls(
            tempdir / "selector", _owned_tempdir=tempdir, **kwargs
        )

    @classmethod
    def from_artifact(
        cls, store: Any, artifact_id: str, **kwargs: Any
    ) -> "ShardedFleet":
        """Serve a ``selector`` artifact straight from the store.

        Artifacts written since the mapped layout landed carry it inside
        their payload — workers map the store's bytes directly.  Older
        artifacts are re-exported to a fleet-owned temporary layout.
        """
        from repro.pipeline.mapped import MAPPED_META_FILE

        artifact = store.resolve(artifact_id)
        if artifact is None:
            raise KeyError(f"cannot resolve artifact {artifact_id!r}")
        mapped_dir = (
            store.root
            / "objects"
            / artifact.provenance.fingerprint
            / "payload"
            / "mapped"
        )
        if (mapped_dir / MAPPED_META_FILE).exists():
            return cls(mapped_dir, **kwargs)
        return cls.from_deployed(artifact.value, **kwargs)

    # -- serving surface -----------------------------------------------------

    def select(
        self, shape: GemmShape, *, policy: Optional[str] = None
    ) -> RoutedDecision:
        """One routed lookup (``policy`` accepted for router parity)."""
        item = self._submit((tuple(shape.as_tuple()),))
        start = time.perf_counter()
        slot_index, configs, rerouted = item.future.result(
            timeout=self._result_timeout_s()
        )
        self._h_request.observe(time.perf_counter() - start)
        return RoutedDecision(
            device_id=self._slots[slot_index].name,
            config=configs[0],
            rerouted=rerouted,
        )

    def select_batch(
        self, shapes: Sequence[GemmShape]
    ) -> Tuple[RoutedDecision, ...]:
        """Routed decisions for many shapes, one flush per shard."""
        shapes = tuple(shapes)
        if not shapes:
            return ()
        n = len(self._slots)
        groups: Dict[int, List[int]] = {}
        keys = [tuple(shape.as_tuple()) for shape in shapes]
        for position, key in enumerate(keys):
            groups.setdefault(shard_of(key, n), []).append(position)
        start = time.perf_counter()
        pending = []
        for shard, positions in groups.items():
            item = self._submit(
                tuple(keys[p] for p in positions), shard=shard
            )
            pending.append((item, positions))
        out: List[Optional[RoutedDecision]] = [None] * len(shapes)
        timeout = self._result_timeout_s()
        for item, positions in pending:
            slot_index, configs, rerouted = item.future.result(timeout=timeout)
            name = self._slots[slot_index].name
            for position, config in zip(positions, configs):
                out[position] = RoutedDecision(
                    device_id=name, config=config, rerouted=rerouted
                )
        duration = time.perf_counter() - start
        self._h_request.observe_n(duration / len(shapes), len(shapes))
        return tuple(out)  # type: ignore[arg-type]

    def complete(self, device_id: str, n: int = 1) -> None:
        """Router parity: shard workers track no outstanding work."""

    def _submit(
        self,
        keys: Tuple[Tuple[int, ...], ...],
        *,
        shard: Optional[int] = None,
    ) -> _Item:
        if self._closing:
            raise RuntimeError("fleet is closed")
        if shard is None:
            shard = shard_of(keys[0], len(self._slots))
        slot = self._slots[shard]
        rerouted = False
        if not slot.alive:
            healthy = self._healthy_slot(exclude=shard)
            if healthy is not None:
                slot = healthy
                rerouted = True
        self._c_requests.inc(len(keys))
        item = _Item(keys, rerouted)
        slot.queue.put(item)
        return item

    def _healthy_slot(self, *, exclude: int) -> Optional[_Slot]:
        n = len(self._slots)
        for offset in range(1, n + 1):
            slot = self._slots[(exclude + offset) % n]
            if slot.alive and slot.index != exclude:
                return slot
        return None

    def _result_timeout_s(self) -> float:
        # Worst case a request is rerouted through every slot, each
        # allowed a full reply timeout (plus restart headroom).
        return (self._request_timeout_s + self._startup_timeout_s) * (
            len(self._slots) + 1
        )

    def _dispatched_counter(self, name: str):
        return self.registry.counter("shard.dispatched", {"worker": name})

    # -- observability -------------------------------------------------------

    def pull_metrics(self, timeout_s: float = 10.0) -> int:
        """Merge a fresh snapshot delta from every live worker.

        Returns how many workers answered; their deltas are folded into
        :attr:`registry` (exact totals — see
        :class:`~repro.obs.aggregate.SnapshotDeltaTracker`).
        """
        controls = []
        for slot in self._slots:
            if slot.alive:
                control = _Control("snapshot")
                slot.queue.put(control)
                controls.append(control)
        merged = 0
        deadline = time.monotonic() + timeout_s
        for control in controls:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                if control.future.result(timeout=remaining):
                    merged += 1
            except Exception:  # noqa: BLE001 - stats must not raise
                pass
        return merged

    def stats(self, *, pull: bool = True) -> ShardStats:
        """Fleet-wide stats; ``pull=True`` refreshes worker deltas first."""
        from repro.loadgen.report import QuantileSummary, merged_quantiles

        if pull and not self._closing:
            self.pull_metrics()
        reg = self.registry
        dispatched = {
            slot.name: self._dispatched_counter(slot.name).value
            for slot in self._slots
        }
        request_hist = self._h_request
        return ShardStats(
            workers=tuple(
                WorkerInfo(
                    name=slot.name,
                    pid=slot.pid,
                    alive=slot.alive,
                    restarts=slot.restarts,
                )
                for slot in self._slots
            ),
            requests=self._c_requests.value,
            decisions=self._c_decisions.value,
            rerouted=self._c_rerouted.value,
            restarts=self._c_restarts.value,
            batches=self._c_batches.value,
            mean_batch_size=self._h_batch_size.mean,
            dispatched=dispatched,
            lookup_latency=merged_quantiles(reg, "serving.lookup_seconds"),
            request_latency=(
                QuantileSummary.from_histogram(request_hist)
                if request_hist.count
                else None
            ),
        )

    # -- chaos / lifecycle ---------------------------------------------------

    def kill_worker(self, index: int) -> None:
        """Chaos helper: SIGKILL one worker process (no warning, as in
        a real crash).  The next dispatch or heartbeat triggers
        failover."""
        proc = self._slots[index].proc
        if proc is not None and proc.is_alive():
            proc.kill()

    @property
    def workers_alive(self) -> int:
        return sum(1 for slot in self._slots if slot.alive)

    def _monitor_loop(self) -> None:
        interval = self._heartbeat_interval_s
        while not self._closing:
            time.sleep(interval)
            if self._closing:
                return
            now = time.monotonic()
            for slot in self._slots:
                if self._closing:
                    return
                stale = now - slot.last_reply > interval
                # Dead slots get pinged too: the failed send retries
                # the restart path until the worker comes back.
                if (stale or not slot.alive) and not slot._ping_pending:
                    slot._ping_pending = True
                    slot.queue.put(_Control("ping"))

    def close(self, timeout_s: float = 10.0) -> None:
        """Drain final metrics, stop workers, release owned resources."""
        if self._closing:
            return
        self._closing = True
        for slot in self._slots:
            slot.queue.put(_SHUTDOWN)
        deadline = time.monotonic() + timeout_s
        for slot in self._slots:
            slot.thread.join(timeout=max(0.1, deadline - time.monotonic()))
        for slot in self._slots:
            slot._teardown_worker()
        self._monitor.join(timeout=self._heartbeat_interval_s + 1.0)
        self._g_alive.set(0.0)
        self._cleanup_tempdir()

    def _cleanup_tempdir(self) -> None:
        if self._owned_tempdir is not None:
            shutil.rmtree(self._owned_tempdir, ignore_errors=True)
            self._owned_tempdir = None

    def __enter__(self) -> "ShardedFleet":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedFleet({len(self._slots)} workers, "
            f"{self.workers_alive} alive, digest {self.digest[:12]})"
        )
