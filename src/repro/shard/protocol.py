"""Front-door / worker wire protocol: primitive tuples over a pipe.

Messages are plain tuples of ints, strings and dicts of scalars — the
pipe's pickling is pure IPC transport for primitives, never for model
state.  Selectors reach workers as a *path to mapped bytes* plus an
expected digest (see :mod:`repro.pipeline.mapped`), and decisions come
back as indices into the shared pruned library, so no
:class:`~repro.kernels.params.KernelConfig` or estimator object ever
crosses the pipe.

Request/response pairs carry a monotonically increasing ``req_id``;
the dispatcher owns its connection exclusively, so any id mismatch
means a torn worker and triggers failover.

Parent -> worker::

    ("select", req_id, [shape_tuple, ...])   # (m, k, n, batch) each
    ("snapshot", req_id)                     # ship a metrics delta
    ("ping", req_id)                         # heartbeat
    ("stop",)                                # drain and exit

Worker -> parent::

    ("ready", worker_name, pid, digest)      # startup handshake
    ("ok", req_id, [library_index, ...])
    ("snapshot", req_id, delta_dict)
    ("pong", req_id)
    ("stopped", delta_dict)                  # final metrics flush
    ("fatal", message)                       # unrecoverable; exits
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

__all__ = ["WorkerSpec", "shard_of"]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to boot, in primitives only.

    Safe under any multiprocessing start method: the child re-imports
    :mod:`repro.shard.worker` and rebuilds its whole serving stack from
    the mapped artifact path — the parent's objects never transfer.
    """

    name: str
    mapped_dir: str
    #: Expected artifact digest; the worker refuses to serve from bytes
    #: whose verified digest differs (None skips the cross-check, the
    #: per-array SHA-256 verification still runs unless ``verify=False``).
    digest: Optional[str] = None
    compiled: bool = False
    cache_capacity: int = 4096
    verify: bool = True
    mmap: bool = True


def shard_of(key: Sequence[int], n_shards: int) -> int:
    """The shard owning a shape key — stable across processes and runs.

    CRC32 over the packed ``(m, k, n, batch)`` tuple: deterministic
    (unlike ``hash()`` under PYTHONHASHSEED) and uniform enough that
    Zipf-skewed shape streams spread across workers.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    packed = struct.pack(f"<{len(key)}q", *key)
    return zlib.crc32(packed) % n_shards


def pack_keys(shapes: Sequence[Tuple[int, ...]]) -> Tuple[Tuple[int, ...], ...]:
    """Normalize shape keys for the wire (plain int tuples)."""
    return tuple(tuple(int(x) for x in key) for key in shapes)
