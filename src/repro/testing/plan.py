"""Deterministic, counter-based fault plans.

A :class:`FaultPlan` decides — as a pure function of its seed and the
fault coordinates — whether a given operation fails, and how.  The same
idiom as :mod:`repro.perfmodel.noise`: decisions are keyed on identity
tuples hashed through :func:`repro.utils.rng.derive_seed`, so fault
injection is reproducible, order-independent and safe under the
process-pool sweep (a cell faults or not regardless of worker count or
execution order).

Two coordinate systems are served:

* **benchmark cells** — ``(shape, config, attempt)``, consumed by
  :class:`~repro.testing.faulty.FaultyModel` inside a
  :class:`~repro.bench.runner.BenchmarkRunner` sweep;
* **queue submissions** — ``(kernel name, submission index)``, consumed
  by :class:`~repro.testing.faulty.FaultyQueue`;
* **selection lookups** — ``(device id, query index)``, consumed by
  :class:`~repro.testing.faulty.FaultyPolicy` behind a
  :class:`~repro.serving.service.SelectionService` (fleet degradation
  tests kill a whole device with :meth:`FaultPlan.kill_device`).

``fail_attempts`` distinguishes hard failures from transient ones: with
``fail_attempts=None`` a faulty coordinate fails every attempt (retries
cannot save it, the cell becomes NaN); with ``fail_attempts=k`` only the
first ``k`` attempts fail, so a runner configured with ``max_retries >=
k`` recovers the measurement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.kernels.params import KernelConfig, config_index
from repro.sycl.exceptions import DeviceError, DeviceTimeoutError
from repro.utils.rng import derive_seed
from repro.workloads.gemm import GemmShape

__all__ = ["FaultKind", "FaultPlan", "InjectedFault", "raise_fault"]

#: Resolution of the hash-to-uniform conversion.
_HASH_BUCKETS = 2**32


class FaultKind(enum.Enum):
    """What kind of failure an injected fault simulates."""

    DEVICE_ERROR = "device-error"
    TIMEOUT = "timeout"


@dataclass(frozen=True)
class InjectedFault:
    """One planned fault: its kind and how many attempts it survives."""

    kind: FaultKind
    #: None = every attempt fails; k = attempts 0..k-1 fail, then recover.
    fail_attempts: Optional[int] = None

    def fires_on(self, attempt: int) -> bool:
        return self.fail_attempts is None or attempt < self.fail_attempts


def raise_fault(kind: FaultKind, context: str) -> None:
    """Raise the runtime exception matching a fault kind."""
    if kind is FaultKind.TIMEOUT:
        raise DeviceTimeoutError(f"injected timeout: {context}")
    raise DeviceError(f"injected device error: {context}")


class FaultPlan:
    """Deterministic schedule of injected faults.

    ``rate`` picks a fraction of benchmark cells / queue submissions to
    fault, chosen by hashing the coordinates with ``seed`` (so two plans
    with the same seed and rate agree exactly).  Explicitly poisoned
    coordinates, added with :meth:`poison` / :meth:`poison_submission`,
    override the rate-based draw.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        rate: float = 0.0,
        kind: Optional[FaultKind] = None,
        fail_attempts: Optional[int] = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if fail_attempts is not None and fail_attempts < 1:
            raise ValueError(
                f"fail_attempts must be >= 1 when given, got {fail_attempts}"
            )
        self._seed = int(seed)
        self._rate = float(rate)
        self._kind = kind
        self._fail_attempts = fail_attempts
        self._cells: Dict[Tuple[Tuple[int, ...], int], InjectedFault] = {}
        self._submissions: Dict[Tuple[str, int], InjectedFault] = {}
        self._selections: Dict[Tuple[str, int], InjectedFault] = {}
        #: device id -> (first failing query index, fault) for devices
        #: killed outright.
        self._killed: Dict[str, Tuple[int, InjectedFault]] = {}

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def rate(self) -> float:
        return self._rate

    # -- plan construction -------------------------------------------------

    def poison(
        self,
        shape: GemmShape,
        config: KernelConfig,
        *,
        kind: FaultKind = FaultKind.DEVICE_ERROR,
        fail_attempts: Optional[int] = None,
    ) -> "FaultPlan":
        """Explicitly fault one benchmark cell; returns self for chaining."""
        key = (shape.as_tuple(), config_index(config))
        self._cells[key] = InjectedFault(kind=kind, fail_attempts=fail_attempts)
        return self

    def poison_submission(
        self,
        kernel_name: str,
        index: int = 0,
        *,
        kind: FaultKind = FaultKind.DEVICE_ERROR,
    ) -> "FaultPlan":
        """Fault the ``index``-th submission of the named kernel."""
        if index < 0:
            raise ValueError(f"submission index must be >= 0, got {index}")
        self._submissions[(kernel_name, index)] = InjectedFault(kind=kind)
        return self

    def poison_selection(
        self,
        device_id: str,
        index: int = 0,
        *,
        kind: FaultKind = FaultKind.DEVICE_ERROR,
    ) -> "FaultPlan":
        """Fault the ``index``-th selection lookup on one device."""
        if index < 0:
            raise ValueError(f"selection index must be >= 0, got {index}")
        self._selections[(device_id, index)] = InjectedFault(kind=kind)
        return self

    def kill_device(
        self,
        device_id: str,
        *,
        after: int = 0,
        kind: FaultKind = FaultKind.DEVICE_ERROR,
    ) -> "FaultPlan":
        """Fail every selection on a device from query ``after`` onward.

        Models a device dropping out of the fleet mid-traffic: the
        degradation tests assert the router trips the device's breaker
        and reroutes without a single failed lookup.  Reversible with
        :meth:`revive_device`.
        """
        if after < 0:
            raise ValueError(f"after must be >= 0, got {after}")
        self._killed[device_id] = (after, InjectedFault(kind=kind))
        return self

    def revive_device(self, device_id: str) -> "FaultPlan":
        """Undo :meth:`kill_device` (the device starts answering again)."""
        self._killed.pop(device_id, None)
        return self

    # -- decisions ---------------------------------------------------------

    def fault_for(
        self, shape: GemmShape, config: KernelConfig, attempt: int = 0
    ) -> Optional[FaultKind]:
        """The fault (if any) for one benchmark-cell attempt."""
        key = (shape.as_tuple(), config_index(config))
        planned = self._cells.get(key)
        if planned is None:
            planned = self._drawn_fault("fault-cell", *key[0], key[1])
        if planned is not None and planned.fires_on(attempt):
            return planned.kind
        return None

    def fault_for_submission(
        self, kernel_name: str, index: int
    ) -> Optional[FaultKind]:
        """The fault (if any) for one queue submission."""
        planned = self._submissions.get((kernel_name, index))
        if planned is None:
            planned = self._drawn_fault("fault-submit", kernel_name, index)
        if planned is not None and planned.fires_on(0):
            return planned.kind
        return None

    def fault_for_selection(
        self, device_id: str, index: int
    ) -> Optional[FaultKind]:
        """The fault (if any) for one selection lookup on a device."""
        killed = self._killed.get(device_id)
        if killed is not None and index >= killed[0]:
            return killed[1].kind
        planned = self._selections.get((device_id, index))
        if planned is None:
            planned = self._drawn_fault("fault-select", device_id, index)
        if planned is not None and planned.fires_on(0):
            return planned.kind
        return None

    # -- internals ---------------------------------------------------------

    def _drawn_fault(self, channel: str, *coords) -> Optional[InjectedFault]:
        if self._rate == 0.0:
            return None
        digest = derive_seed(self._seed, channel, *coords)
        if (digest % _HASH_BUCKETS) / _HASH_BUCKETS >= self._rate:
            return None
        kind = self._kind
        if kind is None:
            # Mix kinds deterministically from an independent hash bit.
            kind = (
                FaultKind.TIMEOUT
                if derive_seed(self._seed, channel + "-kind", *coords) % 2
                else FaultKind.DEVICE_ERROR
            )
        return InjectedFault(kind=kind, fail_attempts=self._fail_attempts)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self._seed}, rate={self._rate}, "
            f"{len(self._cells)} poisoned cells, "
            f"{len(self._submissions)} poisoned submissions, "
            f"{len(self._selections)} poisoned selections, "
            f"{len(self._killed)} killed devices)"
        )
