"""Differential oracles: fast paths checked against reference paths.

Each oracle generates a pinned-seed stream of randomized cases and
asserts that an optimised implementation agrees exactly with its
reference:

* :func:`tree_apply_oracle` — the vectorized
  :meth:`~repro.ml.tree.structure.Tree.apply` against the scalar
  :meth:`~repro.ml.tree.structure.Tree.apply_loop`, over random trees
  (including degenerate single-leaf ones) and inputs engineered to hit
  threshold ties;
* :func:`batch_select_oracle` — a policy's ``select_batch`` against the
  per-item ``select`` loop, over random GEMM shapes with repeats;
* :func:`queue_equivalence_oracle` — a fault-free
  :class:`~repro.testing.faulty.FaultyQueue` against a bare
  :class:`~repro.sycl.queue.Queue`, comparing numerical results, event
  profiles, device clocks and submission logs.

Oracles return an :class:`OracleReport`; tests call
:meth:`OracleReport.raise_on_failure` so a mismatch fails with the
offending case in the message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.kernels.params import config_space
from repro.ml.tree.structure import Tree, TreeBuilderState
from repro.sycl.device import Device
from repro.sycl.queue import Queue
from repro.testing.faulty import FaultyQueue
from repro.testing.plan import FaultPlan
from repro.utils.rng import stream
from repro.workloads.gemm import GemmShape

__all__ = [
    "OracleReport",
    "adaptive_select_oracle",
    "batch_select_oracle",
    "queue_equivalence_oracle",
    "random_shapes",
    "random_tree",
    "tree_apply_oracle",
]


@dataclass(frozen=True)
class OracleReport:
    """Outcome of one oracle run."""

    name: str
    cases: int
    mismatches: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def raise_on_failure(self) -> "OracleReport":
        """Raise AssertionError listing the first mismatches; else self."""
        if self.mismatches:
            shown = "\n  ".join(self.mismatches[:5])
            raise AssertionError(
                f"{self.name}: {len(self.mismatches)}/{self.cases} "
                f"randomized cases disagree with the reference:\n  {shown}"
            )
        return self

    def __repr__(self) -> str:
        state = "ok" if self.ok else f"{len(self.mismatches)} mismatches"
        return f"OracleReport({self.name!r}, {self.cases} cases, {state})"


# -- generators -------------------------------------------------------------


def random_tree(
    rng: np.random.Generator,
    *,
    n_features: int = 4,
    max_depth: int = 8,
    leaf_probability: float = 0.3,
) -> Tree:
    """A random but structurally valid decision tree.

    Thresholds are drawn from a small discrete grid so samples regularly
    land exactly on a threshold, exercising the ``<=`` tie-break both
    descents must share.  ``leaf_probability=1`` yields the degenerate
    single-leaf tree.
    """
    state = TreeBuilderState(n_outputs=1)

    def grow(depth: int) -> int:
        node = state.add_node(
            value=np.array([rng.standard_normal()]),
            impurity=0.0,
            n_samples=1,
        )
        if depth >= max_depth or rng.random() < leaf_probability:
            return node
        left = grow(depth + 1)
        right = grow(depth + 1)
        threshold = float(rng.choice([-1.0, -0.5, 0.0, 0.25, 0.5, 1.0]))
        state.make_split(
            node, int(rng.integers(n_features)), threshold, left, right
        )
        return node

    grow(0)
    return state.freeze()


def random_shapes(
    rng: np.random.Generator, count: int, *, max_exp: float = 11.0
) -> List[GemmShape]:
    """Random GEMM shapes with log-uniform dimensions and some repeats."""
    shapes: List[GemmShape] = []
    for _ in range(count):
        if shapes and rng.random() < 0.2:
            # Repeats exercise caches and in-batch dedup paths.
            shapes.append(shapes[int(rng.integers(len(shapes)))])
            continue
        m, k, n = (
            int(2 ** rng.uniform(0.0, max_exp)) for _ in range(3)
        )
        batch = int(rng.choice([1, 1, 1, 2, 16]))
        shapes.append(GemmShape(m=max(m, 1), k=max(k, 1), n=max(n, 1), batch=batch))
    return shapes


# -- oracles ----------------------------------------------------------------


def tree_apply_oracle(*, cases: int = 200, seed: int = 0) -> OracleReport:
    """``Tree.apply`` == ``Tree.apply_loop`` on random trees and inputs."""
    rng = stream(seed, "oracle", "tree-apply")
    mismatches: List[str] = []
    for case in range(cases):
        # Every 10th case is the degenerate single-leaf tree; batch sizes
        # include the empty batch.
        leaf_p = 1.0 if case % 10 == 0 else 0.3
        tree = random_tree(rng, leaf_probability=leaf_p)
        n = int(rng.integers(0, 64))
        # Half the samples sit on grid points shared with the thresholds.
        X = rng.standard_normal((n, 4))
        grid = rng.choice([-1.0, -0.5, 0.0, 0.25, 0.5, 1.0], size=(n, 4))
        on_grid = rng.random((n, 4)) < 0.5
        X = np.where(on_grid, grid, X)
        fast = tree.apply(X)
        slow = tree.apply_loop(X)
        if not np.array_equal(fast, slow):
            mismatches.append(
                f"case {case}: tree with {tree.node_count} nodes, "
                f"{n} samples: apply != apply_loop"
            )
    return OracleReport("tree-apply", cases, tuple(mismatches))


def batch_select_oracle(
    policy, *, cases: int = 200, seed: int = 0, batch: int = 8
) -> OracleReport:
    """``policy.select_batch`` == per-item ``policy.select``.

    ``cases`` counts individual shapes; they are queried in batches of
    ``batch`` and compared element-wise against the scalar path.
    """
    rng = stream(seed, "oracle", "batch-select")
    mismatches: List[str] = []
    shapes = random_shapes(rng, cases)
    for lo in range(0, len(shapes), batch):
        chunk = shapes[lo : lo + batch]
        got = tuple(policy.select_batch(chunk))
        want = tuple(policy.select(s) for s in chunk)
        for shape, g, w in zip(chunk, got, want):
            if g != w:
                mismatches.append(
                    f"shape {shape}: select_batch chose {g}, select chose {w}"
                )
    return OracleReport("batch-select", len(shapes), tuple(mismatches))


def adaptive_select_oracle(
    policy, *, cases: int = 200, seed: int = 0, batch: int = 8
) -> OracleReport:
    """Exploration-free adaptive serving == the bare service, decision-wise.

    With ``trial_fraction=0`` and no feedback ever recorded, an
    :class:`~repro.serving.adaptive.AdaptiveSelectionService` must be a
    pure pass-through: every single and batch select agrees with a bare
    :class:`~repro.serving.service.SelectionService` over the same
    policy.  ``admission_threshold=1`` admits every shape immediately,
    so the comparison exercises the admitted warm path, not just the
    cold fall-through.  Chunks alternate between ``select_batch`` and
    per-item ``select`` on the adaptive side.
    """
    from repro.adaptive.bandit import AdaptiveConfig
    from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
    from repro.serving.adaptive import AdaptiveSelectionService
    from repro.serving.service import SelectionService

    reference = SelectionService(policy, registry=NULL_REGISTRY)
    config = AdaptiveConfig(
        trial_fraction=0.0, admission_threshold=1, seed=seed
    )
    try:
        adaptive = AdaptiveSelectionService(
            SelectionService(policy, registry=NULL_REGISTRY),
            config=config,
            registry=MetricsRegistry(),
        )
    except ValueError:
        # Policies without a discoverable candidate set still must be
        # decision-identical; the (unused) candidate set is a dummy.
        adaptive = AdaptiveSelectionService(
            SelectionService(policy, registry=NULL_REGISTRY),
            config=config,
            candidates=config_space(tile_sizes=(1,), work_groups=((8, 8),)),
            registry=MetricsRegistry(),
        )
    rng = stream(seed, "oracle", "adaptive-select")
    shapes = random_shapes(rng, cases)
    mismatches: List[str] = []
    for chunk_index, lo in enumerate(range(0, len(shapes), batch)):
        chunk = shapes[lo : lo + batch]
        if chunk_index % 2:
            got = tuple(adaptive.select(s) for s in chunk)
        else:
            got = tuple(adaptive.select_batch(chunk))
        want = tuple(reference.select(s) for s in chunk)
        for shape, g, w in zip(chunk, got, want):
            if g != w:
                mismatches.append(
                    f"shape {shape}: adaptive chose {g}, reference chose {w}"
                )
    stats = adaptive.adaptive_stats()
    if stats.trials:
        mismatches.append(
            f"{stats.trials} trials served with exploration disabled"
        )
    if stats.active_overrides:
        mismatches.append(
            f"{stats.active_overrides} overrides active with no feedback"
        )
    return OracleReport("adaptive-select", len(shapes), tuple(mismatches))


def queue_equivalence_oracle(
    *,
    cases: int = 200,
    seed: int = 0,
    device: Optional[Device] = None,
) -> OracleReport:
    """A fault-free :class:`FaultyQueue` behaves exactly like a ``Queue``.

    Each case runs one random small GEMM through both queues and
    compares the numerical result, the event profile, the simulated
    device clock and the submission log.
    """
    from repro.kernels.matmul import matmul

    device = device or Device.r9_nano()
    rng = stream(seed, "oracle", "queue-equivalence")
    configs = config_space(tile_sizes=(1, 2, 4), work_groups=((8, 8), (16, 16)))
    plain = Queue(device)
    faulty = FaultyQueue(Queue(device), FaultPlan(rate=0.0))
    mismatches: List[str] = []
    for case in range(cases):
        m, k, n = (int(rng.integers(1, 48)) for _ in range(3))
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        config = configs[int(rng.integers(len(configs)))]
        c_plain, ev_plain = matmul(plain, a, b, config)
        c_faulty, ev_faulty = matmul(faulty, a, b, config)
        if not np.array_equal(c_plain, c_faulty):
            mismatches.append(f"case {case}: results differ for {config}")
        if (
            ev_plain.profiling_duration_ns != ev_faulty.profiling_duration_ns
            or plain.device_time_ns != faulty.device_time_ns
        ):
            mismatches.append(f"case {case}: timelines diverge for {config}")
    if plain.submission_log != faulty.submission_log:
        mismatches.append("submission logs differ after the run")
    if faulty.failure_log:
        mismatches.append("fault-free plan recorded failures")
    return OracleReport("queue-equivalence", cases, tuple(mismatches))
