"""Fault-injecting wrappers over the runtime and the benchmark model.

Three injection points, all driven by one :class:`~repro.testing.plan.FaultPlan`:

* :class:`FaultyModel` wraps a performance model's
  ``measured_times_seconds`` — the interface
  :class:`~repro.bench.runner.BenchmarkRunner` measures through — and
  raises on planned (shape, config, attempt) coordinates.  Attempts are
  counted per cell inside the wrapper, so retry semantics are exercised
  exactly (the same counter-based idiom as the noise streams: each shape
  is swept wholly inside one worker, so decisions are unaffected by
  parallelism).
* :class:`FaultyQueue` wraps a :class:`~repro.sycl.queue.Queue` and
  raises on planned (kernel name, submission index) coordinates before
  the kernel executes.
* :class:`FaultyDevice` is a :class:`~repro.sycl.device.Device` carrying
  a plan, whose :meth:`~FaultyDevice.queue` factory yields pre-wired
  faulty queues.

:func:`faulty_runner` assembles the common case: a
:class:`BenchmarkRunner` whose sweep hits injected faults.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.bench.failures import FailureLog, FailureRecord
from repro.bench.runner import BenchmarkRunner, RunnerConfig
from repro.kernels.params import KernelConfig, config_index
from repro.perfmodel.model import GemmPerfModel
from repro.perfmodel.params import PerfModelParams
from repro.sycl.device import Device
from repro.sycl.queue import Queue
from repro.testing.plan import FaultPlan, raise_fault
from repro.workloads.gemm import GemmShape

__all__ = [
    "FaultyDevice",
    "FaultyModel",
    "FaultyPolicy",
    "FaultyQueue",
    "faulty_runner",
]


class FaultyModel:
    """Performance-model wrapper raising planned measurement faults.

    Anything accepted as a :class:`BenchmarkRunner` ``model`` can be
    wrapped.  Each ``measured_times_seconds`` call for a (shape, config)
    cell is one *attempt*; the plan decides per attempt, so transient
    plans (``fail_attempts=k``) recover under the runner's retries while
    hard plans fail the cell outright.  One wrapper instance covers one
    sweep; call :meth:`reset` before reusing it.
    """

    def __init__(self, model, plan: FaultPlan):
        self._model = model
        self._plan = plan
        self._attempts: Dict[Tuple[Tuple[int, ...], int], int] = {}

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    @property
    def wrapped(self):
        return self._model

    def attempts_for(self, shape: GemmShape, config: KernelConfig) -> int:
        """How many measurement attempts the cell has seen."""
        return self._attempts.get((shape.as_tuple(), config_index(config)), 0)

    def reset(self) -> None:
        """Zero the attempt counters (start a fresh sweep)."""
        self._attempts.clear()

    def measured_times_seconds(
        self,
        shape: GemmShape,
        config: KernelConfig,
        *,
        iterations: int,
        start_iteration: int = 0,
    ) -> np.ndarray:
        key = (shape.as_tuple(), config_index(config))
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        kind = self._plan.fault_for(shape, config, attempt)
        if kind is not None:
            raise_fault(
                kind, f"shape {shape}, config {config}, attempt {attempt}"
            )
        return self._model.measured_times_seconds(
            shape,
            config,
            iterations=iterations,
            start_iteration=start_iteration,
        )

    def __getattr__(self, name):
        # Everything else (time_seconds, breakdown, params, ...) passes
        # through to the wrapped model untouched.  Underscored lookups
        # are refused so pickling never recurses through delegation.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._model, name)

    def __getstate__(self):
        return self.__dict__

    def __setstate__(self, state):
        self.__dict__.update(state)

    def __repr__(self) -> str:
        return f"FaultyModel({self._model!r}, {self._plan!r})"


class FaultyPolicy:
    """Selection-policy wrapper raising planned per-device lookup faults.

    Wraps anything with ``select(shape)`` (and optionally
    ``select_batch``) behind a :class:`~repro.serving.service.SelectionService`
    or a fleet router.  Every shape queried consumes one *query index*
    on the wrapper's ``device_id``; the plan decides per index, so
    :meth:`FaultPlan.kill_device` turns the device off mid-traffic and
    :meth:`FaultPlan.poison_selection` hits one exact lookup.  Batch
    queries consume one index per shape and raise on the first faulted
    coordinate — matching a vectorized policy pass dying wholesale.
    """

    def __init__(self, policy, plan: FaultPlan, *, device_id: str):
        self._policy = policy
        self._plan = plan
        self._device_id = device_id
        self._count = 0

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    @property
    def device_id(self) -> str:
        return self._device_id

    @property
    def wrapped(self):
        return self._policy

    @property
    def selections(self) -> int:
        """Query indices consumed so far (including faulted ones)."""
        return self._count

    def _next_index(self) -> None:
        index = self._count
        self._count = index + 1
        kind = self._plan.fault_for_selection(self._device_id, index)
        if kind is not None:
            raise_fault(
                kind, f"selection #{index} on device {self._device_id}"
            )

    def select(self, shape: GemmShape):
        self._next_index()
        return self._policy.select(shape)

    def select_batch(self, shapes: Sequence[GemmShape]):
        batch_fn = getattr(self._policy, "select_batch", None)
        if batch_fn is None:
            raise AttributeError("wrapped policy has no select_batch")
        for _ in shapes:
            self._next_index()
        return batch_fn(shapes)

    def __getattr__(self, name):
        # Everything else (library, selector, ...) passes through; see
        # FaultyModel for why underscored lookups are refused.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._policy, name)

    def __repr__(self) -> str:
        return (
            f"FaultyPolicy({self._policy!r}, {self._plan!r}, "
            f"device_id={self._device_id!r})"
        )


class FaultyQueue:
    """Queue wrapper raising planned faults at submit time.

    Implements the :class:`~repro.sycl.queue.Queue` surface; successful
    submissions delegate to the wrapped queue, planned ones raise before
    the kernel executes and are recorded in :attr:`failure_log`.  With a
    zero-rate, nothing-poisoned plan the wrapper is observationally
    identical to the queue it wraps (the differential oracle pins this).
    """

    def __init__(
        self,
        queue: Queue,
        plan: FaultPlan,
        *,
        failure_log: Optional[FailureLog] = None,
    ):
        if not isinstance(queue, Queue):
            raise TypeError(f"queue must be a Queue, got {type(queue).__name__}")
        self._queue = queue
        self._plan = plan
        self._counts: Dict[str, int] = {}
        self._failures = failure_log if failure_log is not None else FailureLog()

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    @property
    def failure_log(self) -> FailureLog:
        return self._failures

    @property
    def submission_counts(self) -> Dict[str, int]:
        """Submissions attempted per kernel name (including faulted)."""
        return dict(self._counts)

    # -- Queue surface -----------------------------------------------------

    @property
    def device(self) -> Device:
        return self._queue.device

    @property
    def profiling_enabled(self) -> bool:
        return self._queue.profiling_enabled

    @property
    def device_time_ns(self) -> int:
        return self._queue.device_time_ns

    @property
    def submission_log(self):
        return self._queue.submission_log

    @property
    def failed_submissions(self):
        return self._queue.failed_submissions

    def submit(self, kernel, ndrange, args, *, depends_on=None):
        index = self._counts.get(kernel.name, 0)
        self._counts[kernel.name] = index + 1
        kind = self._plan.fault_for_submission(kernel.name, index)
        if kind is not None:
            context = f"submission #{index} of {kernel.name}"
            self._failures.append(
                FailureRecord(
                    kind=kind.value,
                    message=f"injected fault at {context}",
                    attempt=index,
                    where=kernel.name,
                )
            )
            raise_fault(kind, context)
        return self._queue.submit(kernel, ndrange, args, depends_on=depends_on)

    def wait(self) -> None:
        self._queue.wait()

    def __repr__(self) -> str:
        return f"FaultyQueue({self._queue!r}, {self._plan!r})"


class FaultyDevice(Device):
    """A device handle whose queues inject the attached plan's faults."""

    def __init__(self, device: Device, plan: FaultPlan):
        super().__init__(device.spec)
        self._plan = plan

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def queue(self, *, enable_profiling: bool = True) -> FaultyQueue:
        """A fault-injecting queue bound to this device."""
        return FaultyQueue(
            Queue(self, enable_profiling=enable_profiling), self._plan
        )


def faulty_runner(
    device: Device,
    plan: FaultPlan,
    *,
    configs: Optional[Sequence[KernelConfig]] = None,
    runner_config: Optional[RunnerConfig] = None,
    model_params: Optional[PerfModelParams] = None,
) -> BenchmarkRunner:
    """A :class:`BenchmarkRunner` whose measurements hit ``plan``'s faults.

    Identical to ``BenchmarkRunner(device, ...)`` except the performance
    model is wrapped in a :class:`FaultyModel`; on the fault-free
    coordinates the produced numbers are bit-identical to an unwrapped
    runner with the same protocol.
    """
    rc = runner_config or RunnerConfig()
    model = GemmPerfModel(device, params=model_params, seed=rc.seed)
    return BenchmarkRunner(
        device,
        configs=configs,
        runner_config=rc,
        model=FaultyModel(model, plan),
    )
