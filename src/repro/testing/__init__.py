"""Deterministic fault injection and differential oracles.

The correctness tooling behind the production north-star: inject faults
on chosen coordinates (:class:`FaultPlan` + the ``Faulty*`` wrappers),
prove the sweep degrades gracefully instead of aborting
(:class:`~repro.bench.failures.FailureLog`, NaN-masked cells), and pin
every fast path to its reference implementation with randomized
differential oracles.
"""

from repro.bench.failures import FailureLog, FailureRecord
from repro.testing.faulty import (
    FaultyDevice,
    FaultyModel,
    FaultyPolicy,
    FaultyQueue,
    faulty_runner,
)
from repro.testing.oracles import (
    OracleReport,
    adaptive_select_oracle,
    batch_select_oracle,
    queue_equivalence_oracle,
    random_shapes,
    random_tree,
    tree_apply_oracle,
)
from repro.testing.plan import FaultKind, FaultPlan, InjectedFault, raise_fault

__all__ = [
    "FailureLog",
    "FailureRecord",
    "FaultKind",
    "FaultPlan",
    "FaultyDevice",
    "FaultyModel",
    "FaultyPolicy",
    "FaultyQueue",
    "InjectedFault",
    "OracleReport",
    "adaptive_select_oracle",
    "batch_select_oracle",
    "faulty_runner",
    "queue_equivalence_oracle",
    "raise_fault",
    "random_shapes",
    "random_tree",
    "tree_apply_oracle",
]
