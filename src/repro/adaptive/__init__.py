"""Online adaptive kernel selection (the feedback layer).

The static decision tree is frozen at train time; this package adapts
it under live traffic, modelled on Stream-K++'s Bloom-admitted
adaptive GEMM selection (PAPERS.md, arXiv:2408.11417):

* :mod:`~repro.adaptive.bandit` — per-shape bandit state: decayed
  estimators per candidate config, scheduled trials, and confidence-
  margin promotion with probationary demotion-on-regression.
* :mod:`~repro.adaptive.replay` — the deterministic record/replay
  harness that pins trial/promotion sequences bit-identically.
* :class:`~repro.serving.adaptive.AdaptiveSelectionService` (re-
  exported lazily) — the serving-side wrapper that slots the layer
  into a :class:`~repro.serving.router.FleetRouter` unchanged.
"""

from typing import TYPE_CHECKING

from repro.adaptive.bandit import (
    EXPLORERS,
    AdaptiveConfig,
    BanditEvent,
    ShapeBandit,
)
from repro.adaptive.replay import ReplayResult, ReplayStep, run_replay

if TYPE_CHECKING:  # pragma: no cover - static re-export for type checkers
    from repro.serving.adaptive import AdaptiveSelectionService, AdaptiveStats

__all__ = [
    "AdaptiveConfig",
    "AdaptiveSelectionService",
    "AdaptiveStats",
    "BanditEvent",
    "EXPLORERS",
    "ReplayResult",
    "ReplayStep",
    "ShapeBandit",
    "run_replay",
]


def __getattr__(name: str) -> object:
    # Lazy: repro.serving.adaptive imports repro.adaptive.bandit, so an
    # eager import here would be circular whichever side loads first.
    if name in ("AdaptiveSelectionService", "AdaptiveStats"):
        from repro.serving import adaptive as _serving_adaptive

        return getattr(_serving_adaptive, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
