"""Per-shape bandit state for online adaptive kernel selection.

One :class:`ShapeBandit` exists per *admitted* shape fingerprint (see
:class:`repro.ml.online.BloomAdmission`).  It keeps a decayed
mean/variance estimator per candidate config, arms at most one pending
*trial* (a challenger config to serve exactly once), and promotes a
challenger over the incumbent only when the challenger's upper
confidence bound beats the incumbent's lower bound.  Promotions are
probationary: a promoted config that regresses against the mean it
promised is demoted back within ``probation`` feedbacks.

Determinism: trials are armed on the *feedback* path — every
``trial_interval``-th feedback per shape arms one challenger — never on
the select path.  That keeps warm selects read-only, bounds trials
served per shape by ``feedbacks / trial_interval``, and makes a
single-threaded replay of a (shape, config, latency) trace bit-exact.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kernels.params import KernelConfig
from repro.ml.online import DecayedMeanVar
from repro.utils.rng import derive_seed

__all__ = ["AdaptiveConfig", "BanditEvent", "EXPLORERS", "ShapeBandit"]

Key = Tuple[int, ...]

#: Supported challenger-selection strategies.
EXPLORERS = ("ucb", "epsilon-greedy")


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs for the adaptive layer; every default is deterministic.

    ``trial_fraction`` is the exploration budget: at most that fraction
    of a shape's requests are served a challenger config (0 disables
    exploration entirely).  ``ucb`` picks the challenger with the most
    optimistic lower confidence bound (after sampling every candidate
    ``min_trials`` times); ``epsilon-greedy`` picks uniformly from the
    non-incumbent candidates on a :func:`~repro.utils.rng.derive_seed`
    stream.
    """

    trial_fraction: float = 0.125
    explorer: str = "ucb"
    seed: int = 0
    half_life: float = 64.0
    min_trials: int = 4
    promote_margin: float = 2.0
    probation: int = 64
    regression_margin: float = 1.25
    admission_threshold: int = 2
    admission_capacity: int = 4096
    admission_error_rate: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 <= self.trial_fraction <= 1.0:
            raise ValueError(
                f"trial_fraction must be in [0, 1], got {self.trial_fraction}"
            )
        if self.explorer not in EXPLORERS:
            raise ValueError(
                f"explorer must be one of {EXPLORERS}, got {self.explorer!r}"
            )
        if not self.half_life > 0:
            raise ValueError(f"half_life must be > 0, got {self.half_life}")
        if self.min_trials < 1:
            raise ValueError(f"min_trials must be >= 1, got {self.min_trials}")
        if self.promote_margin < 0:
            raise ValueError(
                f"promote_margin must be >= 0, got {self.promote_margin}"
            )
        if self.probation < 1:
            raise ValueError(f"probation must be >= 1, got {self.probation}")
        if self.regression_margin < 1.0:
            raise ValueError(
                f"regression_margin must be >= 1, got {self.regression_margin}"
            )
        if self.admission_threshold < 1:
            raise ValueError(
                "admission_threshold must be >= 1, "
                f"got {self.admission_threshold}"
            )

    @property
    def trial_interval(self) -> Optional[int]:
        """Arm one trial every Nth feedback; None disables exploration."""
        if self.trial_fraction <= 0.0:
            return None
        return max(1, round(1.0 / self.trial_fraction))


@dataclass(frozen=True)
class BanditEvent:
    """One state transition: a trial served, a promotion, or a demotion.

    ``config`` is the subject (the trialed challenger, the newly
    promoted incumbent, or the demoted config); ``replaces`` is the
    config it displaced (promotion) or the incumbent restored in its
    place (demotion).  ``feedbacks`` is the shape's feedback count when
    the event fired, which orders events deterministically in replays.
    """

    kind: str
    shape: Key
    config: KernelConfig
    replaces: Optional[KernelConfig] = None
    feedbacks: int = 0

    def describe(self) -> str:
        subject = self.config.short_name()
        if self.kind == "promotion":
            other = "" if self.replaces is None else self.replaces.short_name()
            detail = f"{other} -> {subject}"
        elif self.kind == "demotion":
            other = "" if self.replaces is None else self.replaces.short_name()
            detail = f"{subject} -> back to {other}"
        else:
            detail = subject
        return f"{self.kind:9s} shape={self.shape} {detail} @fb{self.feedbacks}"


class ShapeBandit:
    """Adaptive state for one admitted shape (thread-safe, own lock).

    ``current`` is the promotion override (None means "serve the static
    policy's answer"); ``next_trial`` is the single armed challenger
    slot, consumed by :meth:`take_trial`.  Both are read without the
    lock on the serving hot path and mutated only under it.
    """

    __slots__ = (
        "_fallback",
        "_lock",
        "_probation_left",
        "_promise",
        "_seed",
        "_stats",
        "base",
        "candidates",
        "config",
        "current",
        "demotions",
        "feedbacks",
        "key",
        "next_trial",
        "promotions",
        "trials",
    )

    def __init__(
        self,
        key: Key,
        base: KernelConfig,
        candidates: Sequence[KernelConfig],
        config: AdaptiveConfig,
    ) -> None:
        self.key = key
        self.base = base
        self.candidates: Tuple[KernelConfig, ...] = tuple(
            dict.fromkeys((base, *candidates))
        )
        self.config = config
        self.current: Optional[KernelConfig] = None
        self.next_trial: Optional[KernelConfig] = None
        self.feedbacks = 0
        self.trials = 0
        self.promotions = 0
        self.demotions = 0
        self._stats: Dict[KernelConfig, DecayedMeanVar] = {}
        self._fallback: Optional[KernelConfig] = None
        self._promise = 0.0
        self._probation_left = 0
        self._lock = threading.Lock()
        self._seed = derive_seed(config.seed, "bandit", *key)

    @property
    def incumbent(self) -> KernelConfig:
        current = self.current
        return current if current is not None else self.base

    def estimator(self, config: KernelConfig) -> Optional[DecayedMeanVar]:
        return self._stats.get(config)

    def take_trial(self) -> Optional[KernelConfig]:
        """Consume the armed challenger, if any (at most one serve)."""
        if self.next_trial is None:
            return None
        with self._lock:
            challenger = self.next_trial
            if challenger is None:
                return None
            self.next_trial = None
            self.trials += 1
            return challenger

    def record(
        self, config: KernelConfig, seconds: float
    ) -> Tuple[BanditEvent, ...]:
        """Fold one observed latency in; returns promotion/demotion events."""
        cfg = self.config
        events: List[BanditEvent] = []
        with self._lock:
            self.feedbacks += 1
            est = self._stats.get(config)
            if est is None:
                est = self._stats[config] = DecayedMeanVar(
                    half_life=cfg.half_life
                )
            est.observe(seconds)
            current = self.current
            if (
                current is not None
                and config == current
                and self._probation_left > 0
            ):
                # Probation: the promoted config must keep delivering the
                # mean it promised at promotion time, or it goes back.
                self._probation_left -= 1
                if est.mean > self._promise * cfg.regression_margin:
                    restored = (
                        self._fallback
                        if self._fallback is not None
                        else self.base
                    )
                    self.current = restored if restored != self.base else None
                    self._fallback = None
                    self._probation_left = 0
                    self.demotions += 1
                    # Forget the regressed config so it must re-earn any
                    # future promotion from fresh trials.
                    del self._stats[config]
                    events.append(
                        BanditEvent(
                            "demotion",
                            self.key,
                            config,
                            restored,
                            self.feedbacks,
                        )
                    )
            elif config != self.incumbent:
                incumbent = self.incumbent
                inc = self._stats.get(incumbent)
                margin = cfg.promote_margin
                if (
                    inc is not None
                    and est.count >= cfg.min_trials
                    and inc.count >= cfg.min_trials
                    and est.mean + margin * est.stderr
                    < inc.mean - margin * inc.stderr
                ):
                    self._fallback = incumbent
                    self._promise = est.mean
                    self._probation_left = cfg.probation
                    self.current = config
                    self.promotions += 1
                    events.append(
                        BanditEvent(
                            "promotion",
                            self.key,
                            config,
                            incumbent,
                            self.feedbacks,
                        )
                    )
            interval = cfg.trial_interval
            if interval is not None and self.feedbacks % interval == 0:
                challenger = self._choose_challenger()
                if challenger is not None:
                    self.next_trial = challenger
        return tuple(events)

    def _choose_challenger(self) -> Optional[KernelConfig]:
        incumbent = self.incumbent
        others = [c for c in self.candidates if c != incumbent]
        if not others:
            return None
        if self.config.explorer == "epsilon-greedy":
            index = derive_seed(self._seed, "explore", self.feedbacks)
            return others[index % len(others)]
        # UCB-style: sample every under-observed arm first (least raw
        # count wins, candidate order breaks ties), then the arm with
        # the most optimistic lower confidence bound.
        margin = self.config.promote_margin
        min_trials = self.config.min_trials

        def priority(config: KernelConfig) -> Tuple[float, float, int]:
            est = self._stats.get(config)
            count = 0 if est is None else est.count
            rank = self.candidates.index(config)
            if est is None or count < min_trials:
                return (0.0, float(count), rank)
            return (1.0, est.mean - margin * est.stderr, rank)

        return min(others, key=priority)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ish view of this shape's state (demo / stats surface)."""
        with self._lock:
            arms = {
                config.short_name(): {
                    "count": est.count,
                    "mean_s": est.mean,
                    "std_s": est.std,
                }
                for config, est in self._stats.items()
            }
            return {
                "shape": self.key,
                "incumbent": self.incumbent.short_name(),
                "override": self.current is not None,
                "feedbacks": self.feedbacks,
                "trials": self.trials,
                "promotions": self.promotions,
                "demotions": self.demotions,
                "arms": arms,
            }

    def __repr__(self) -> str:
        return (
            f"ShapeBandit(shape={self.key}, incumbent="
            f"{self.incumbent.short_name()}, feedbacks={self.feedbacks}, "
            f"trials={self.trials})"
        )
