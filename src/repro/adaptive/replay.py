"""Deterministic record/replay for the adaptive layer.

The test-harness half of :mod:`repro.adaptive`: drive an
:class:`~repro.serving.adaptive.AdaptiveSelectionService` through a
pinned request trace with a synthetic latency function, recording every
(shape, config, latency) step and every bandit event.  Everything in
the loop — the request stream, the latency model, the explorer's
derive_seed streams, trial arming on feedback counts — is a pure
function of its seeds, so two replays of the same trace are bit
identical and :meth:`ReplayResult.digest` can pin a whole adaptive run
to one SHA-256.

A :class:`~repro.testing.plan.FaultPlan` can poison the observed
latencies mid-trace (e.g. ``plan.kill_device("replay", after=step)``)
to force a promoted config to regress, which is how demotion-on-
regression is tested without wall-clock flakiness.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.adaptive.bandit import BanditEvent
from repro.kernels.params import KernelConfig
from repro.workloads.gemm import GemmShape

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.serving.adaptive import AdaptiveSelectionService
    from repro.testing.plan import FaultPlan

__all__ = ["LatencyFn", "ReplayResult", "ReplayStep", "run_replay"]

#: (shape, served config, step index) -> observed latency in seconds.
LatencyFn = Callable[[GemmShape, KernelConfig, int], float]


@dataclass(frozen=True)
class ReplayStep:
    """One replayed request: what was served and what it 'cost'."""

    index: int
    shape: GemmShape
    config: KernelConfig
    latency_s: float
    trial: bool


@dataclass(frozen=True)
class ReplayResult:
    """A full replayed trace plus the bandit events it produced."""

    steps: Tuple[ReplayStep, ...]
    events: Tuple[BanditEvent, ...]

    @property
    def decisions(self) -> Tuple[KernelConfig, ...]:
        return tuple(step.config for step in self.steps)

    @property
    def trial_steps(self) -> Tuple[ReplayStep, ...]:
        return tuple(step for step in self.steps if step.trial)

    def events_of(self, kind: str) -> Tuple[BanditEvent, ...]:
        return tuple(event for event in self.events if event.kind == kind)

    def digest(self) -> str:
        """SHA-256 over every step and event — the bit-identity pin."""
        h = hashlib.sha256()
        for s in self.steps:
            h.update(
                f"{s.index}|{s.shape.as_tuple()}|{s.config.short_name()}|"
                f"{s.latency_s!r}|{int(s.trial)}\n".encode()
            )
        for e in self.events:
            replaces = "" if e.replaces is None else e.replaces.short_name()
            h.update(
                f"{e.kind}|{e.shape}|{e.config.short_name()}|"
                f"{replaces}|{e.feedbacks}\n".encode()
            )
        return h.hexdigest()

    def __repr__(self) -> str:
        return (
            f"ReplayResult({len(self.steps)} steps, "
            f"{len(self.trial_steps)} trials, "
            f"{len(self.events_of('promotion'))} promotions, "
            f"{len(self.events_of('demotion'))} demotions)"
        )


def run_replay(
    service: "AdaptiveSelectionService",
    requests: Sequence[GemmShape],
    latency: LatencyFn,
    *,
    plan: Optional["FaultPlan"] = None,
    plan_device: str = "replay",
    poison_config: Optional[KernelConfig] = None,
    poison_factor: float = 8.0,
) -> ReplayResult:
    """Replay a request trace through an adaptive service, synchronously.

    Each request is selected, priced by ``latency(shape, config, i)``
    and immediately fed back via ``service.record`` — the closed loop
    the threaded harness runs, minus the threads.  When ``plan`` fires
    on ``(plan_device, i)`` the observed latency is inflated by
    ``poison_factor`` (optionally only when the served config is
    ``poison_config``), simulating a config that regresses mid-trace.
    """
    steps: List[ReplayStep] = []
    events: List[BanditEvent] = []
    for index, shape in enumerate(requests):
        trials_before = service.adaptive_stats().trials
        config = service.select(shape)
        trial = service.adaptive_stats().trials > trials_before
        seconds = latency(shape, config, index)
        if (
            plan is not None
            and (poison_config is None or config == poison_config)
            and plan.fault_for_selection(plan_device, index) is not None
        ):
            seconds *= poison_factor
        events.extend(service.record(shape, config, seconds))
        steps.append(ReplayStep(index, shape, config, seconds, trial))
    return ReplayResult(tuple(steps), tuple(events))
