"""Onboarding quality report: what did the budget buy?

:class:`OnboardReport` is the terminal artifact of a device's
``onboard-*`` pipeline branch.  It answers ROADMAP item 2's question
directly: at this cell fraction, how close is the budgeted selector to
the one a full 640-cell sweep would have produced?

All scores are geometric-mean achieved performance versus the absolute
oracle on the *full-sweep* branch's held-out test shapes — both
selectors are judged against ground truth, never against imputed
numbers.  ``slowdown`` is the reciprocal (1.0 = oracle-perfect).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Sequence

from repro.core.dataset import DatasetSplit
from repro.core.deploy import DeployedSelector
from repro.core.selection.evaluate import evaluate_selector
from repro.onboard.budget import OnboardBudget
from repro.onboard.sweep import PartialSweep

__all__ = ["OnboardReport", "build_report"]


@dataclass(frozen=True)
class OnboardReport:
    """Budgeted-vs-full selector quality for one onboarded device."""

    device_id: str
    sampler: str
    fraction: float
    cells_attempted: int
    cells_measured: int
    cells_failed: int
    total_cells: int
    #: Geomean achieved vs oracle on the held-out test shapes.
    onboard_score: float
    onboard_accuracy: float
    full_score: float
    full_accuracy: float
    #: Fraction of all shapes where both selectors pick the same config.
    top1_agreement: float
    #: Zero-shot cross-device baseline (no target measurements), if run.
    zero_shot_score: Optional[float] = None

    @property
    def quality(self) -> float:
        """Onboard score as a share of the full-sweep score."""
        return self.onboard_score / self.full_score if self.full_score else 0.0

    @property
    def onboard_slowdown(self) -> float:
        return 1.0 / self.onboard_score if self.onboard_score else float("inf")

    @property
    def full_slowdown(self) -> float:
        return 1.0 / self.full_score if self.full_score else float("inf")

    @property
    def measured_fraction(self) -> float:
        return self.cells_measured / self.total_cells if self.total_cells else 0.0

    def to_dict(self) -> Dict[str, Any]:
        doc = asdict(self)
        doc["quality"] = self.quality
        doc["onboard_slowdown"] = self.onboard_slowdown
        doc["full_slowdown"] = self.full_slowdown
        doc["measured_fraction"] = self.measured_fraction
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "OnboardReport":
        fields = {
            "device_id",
            "sampler",
            "fraction",
            "cells_attempted",
            "cells_measured",
            "cells_failed",
            "total_cells",
            "onboard_score",
            "onboard_accuracy",
            "full_score",
            "full_accuracy",
            "top1_agreement",
            "zero_shot_score",
        }
        return cls(**{k: v for k, v in doc.items() if k in fields})

    def render(self) -> str:
        lines = [
            f"onboard report — device {self.device_id!r}",
            f"  sampler            {self.sampler} "
            f"(budget {self.fraction:.1%} of {self.total_cells} cells)",
            f"  cells              {self.cells_attempted} attempted, "
            f"{self.cells_measured} measured, {self.cells_failed} failed "
            f"({self.measured_fraction:.1%} of table)",
            f"  onboard selector   score {self.onboard_score:.4f} "
            f"(slowdown {self.onboard_slowdown:.3f}x, "
            f"accuracy {self.onboard_accuracy:.1%})",
            f"  full-sweep         score {self.full_score:.4f} "
            f"(slowdown {self.full_slowdown:.3f}x, "
            f"accuracy {self.full_accuracy:.1%})",
            f"  quality            {self.quality:.1%} of full-sweep score",
            f"  top-1 agreement    {self.top1_agreement:.1%}",
        ]
        if self.zero_shot_score is not None:
            lines.append(
                f"  zero-shot baseline score {self.zero_shot_score:.4f}"
            )
        return "\n".join(lines)


def _agreement(
    onboard: DeployedSelector,
    full: DeployedSelector,
    shapes: Sequence,
) -> float:
    """Share of shapes where both selectors choose the same config.

    Compared by :class:`~repro.kernels.params.KernelConfig` value, not
    pruned-set position — the two branches prune independently, so their
    index spaces differ even when the decisions agree.
    """
    if not shapes:
        return 0.0
    ours = onboard.select_batch(shapes)
    theirs = full.select_batch(shapes)
    same = sum(1 for a, b in zip(ours, theirs) if a == b)
    return same / len(shapes)


def build_report(
    *,
    device_id: str,
    budget: OnboardBudget,
    sweep: PartialSweep,
    onboard: DeployedSelector,
    full: DeployedSelector,
    truth_split: DatasetSplit,
    zero_shot_score: Optional[float] = None,
) -> OnboardReport:
    """Score the budgeted selector against the full-sweep one.

    ``truth_split`` must come from the *full-sweep* branch: its test
    dataset is measured ground truth for every config, so both
    evaluations share the same oracle.  Agreement is computed over all
    shapes (train and test) — that is the population a fleet router
    actually serves.
    """
    onboard_eval = evaluate_selector(onboard.selector, truth_split.test)
    full_eval = evaluate_selector(full.selector, truth_split.test)
    all_shapes = tuple(truth_split.train.shapes) + tuple(
        truth_split.test.shapes
    )
    return OnboardReport(
        device_id=device_id,
        sampler=budget.sampler,
        fraction=budget.fraction,
        cells_attempted=sweep.n_attempted,
        cells_measured=sweep.n_measured,
        cells_failed=sweep.failed,
        total_cells=sweep.total_cells,
        onboard_score=onboard_eval.score,
        onboard_accuracy=onboard_eval.accuracy,
        full_score=full_eval.score,
        full_accuracy=full_eval.accuracy,
        top1_agreement=_agreement(onboard, full, all_shapes),
        zero_shot_score=zero_shot_score,
    )
