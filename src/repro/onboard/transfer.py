"""Cross-device transfer and few-shot calibration.

Two transfer paths out of N existing fleet branches:

* :class:`TransferSelector` — the zero-shot baseline: one classifier
  over ``(device features, shape features)`` trained on every source
  device's best-config labels, asked to pick configs for a device it
  has never measured.  This is Lawson's portability experiment
  (arXiv:2008.13145) and the floor any budgeted sweep must beat.
* :func:`calibrated_dataset` — the budgeted path: the joint imputation
  forest (:mod:`repro.onboard.impute`) predicts the new device's full
  table, a per-config residual correction fitted on the budgeted
  measurements (few-shot calibration) removes the model's systematic
  per-config bias, and the measured cells overwrite their predictions.
  The result is a full :class:`~repro.core.dataset.PerformanceDataset`
  the standard prune/train pipeline consumes unchanged.

The residual correction is multiplicative (additive in log space) and
*per config column*: row-constant errors cancel in the per-shape
normalization anyway, so config-axis bias is the only systematic error
that can flip a selector's decision.  Corrections shrink toward the
global residual as measured support thins, so a config column with one
noisy measurement cannot hijack its whole column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import PerformanceDataset
from repro.kernels.params import KernelConfig
from repro.ml.forest import RandomForestClassifier
from repro.onboard.budget import OnboardBudget
from repro.onboard.impute import (
    ImputationModel,
    SourceBranch,
    device_features,
    impute_dataset,
    shape_features,
)
from repro.onboard.sweep import PartialSweep
from repro.sycl.device import DeviceSpec
from repro.utils.rng import derive_seed
from repro.workloads.gemm import GemmShape

__all__ = [
    "ResidualCorrection",
    "TransferSelector",
    "calibrated_dataset",
    "fit_residual_correction",
]


@dataclass(frozen=True)
class ResidualCorrection:
    """Few-shot per-config bias fix, in log-gflops space."""

    global_shift: float
    per_config: np.ndarray
    support: np.ndarray

    def apply(self, predicted_log: np.ndarray) -> np.ndarray:
        if predicted_log.shape[1] != self.per_config.size:
            raise ValueError(
                f"prediction has {predicted_log.shape[1]} configs; "
                f"correction was fitted on {self.per_config.size}"
            )
        return predicted_log + self.global_shift + self.per_config[None, :]


def fit_residual_correction(
    measured_gflops: np.ndarray,
    predicted_log: np.ndarray,
    *,
    shrinkage: float = 1.0,
) -> ResidualCorrection:
    """Fit the correction from the budgeted measurements.

    ``measured_gflops`` is the partial table (NaN where unmeasured);
    residuals are ``log(measured) - predicted``.  Each config column's
    mean residual deviation from the global mean is shrunk by
    ``n / (n + shrinkage)`` where ``n`` is the column's measured count.
    """
    if measured_gflops.shape != predicted_log.shape:
        raise ValueError(
            f"measured {measured_gflops.shape} and predicted "
            f"{predicted_log.shape} grids differ"
        )
    mask = np.isfinite(measured_gflops)
    if not mask.any():
        return ResidualCorrection(
            global_shift=0.0,
            per_config=np.zeros(measured_gflops.shape[1]),
            support=np.zeros(measured_gflops.shape[1], dtype=np.int64),
        )
    residual = np.where(
        mask, np.log(np.where(mask, measured_gflops, 1.0)) - predicted_log, 0.0
    )
    support = mask.sum(axis=0)
    global_shift = float(residual.sum() / mask.sum())
    col_sum = residual.sum(axis=0)
    deviation = np.where(
        support > 0,
        col_sum / np.maximum(support, 1) - global_shift,
        0.0,
    )
    shrink = support / (support + shrinkage)
    return ResidualCorrection(
        global_shift=global_shift,
        per_config=deviation * shrink,
        support=support.astype(np.int64),
    )


def calibrated_dataset(
    sources: Sequence[SourceBranch],
    target_spec: DeviceSpec,
    sweep: PartialSweep,
    budget: Optional[OnboardBudget] = None,
    *,
    seed: int = 0,
) -> PerformanceDataset:
    """The onboarded device's full table: measured + calibrated imputation."""
    budget = budget if budget is not None else OnboardBudget()
    model = ImputationModel(budget).fit(
        tuple(sources), target_spec, sweep.dataset, seed=seed
    )
    predicted, _ = model.predict_target()
    if budget.calibrate:
        correction = fit_residual_correction(sweep.dataset.gflops, predicted)
        predicted = correction.apply(predicted)
    return impute_dataset(sweep.dataset, predicted)


class TransferSelector:
    """Zero-shot cross-device selection: no measurements on the target.

    A bagged-tree classifier over stacked ``(device features, shape
    features)`` rows with each source device's per-shape best config as
    the label.  :meth:`predict_indices` answers positions in the shared
    config tuple; :meth:`predict_configs` resolves them.
    """

    def __init__(self, *, n_estimators: int = 24, random_state: int = 0):
        self.n_estimators = n_estimators
        self.random_state = random_state

    def fit(self, sources: Sequence[SourceBranch]) -> "TransferSelector":
        if not sources:
            raise ValueError("transfer needs at least one source branch")
        ref = sources[0].dataset
        for src in sources[1:]:
            if src.dataset.configs != ref.configs:
                raise ValueError(
                    f"source {src.device_id!r} config space differs from "
                    f"{sources[0].device_id!r}"
                )
        self.configs_: Tuple[KernelConfig, ...] = tuple(ref.configs)
        rows: List[np.ndarray] = []
        labels: List[np.ndarray] = []
        for src in sources:
            dev = device_features(src.spec)
            feats = np.vstack(
                [shape_features(s) for s in src.dataset.shapes]
            )
            block = np.hstack(
                [np.broadcast_to(dev, (len(feats), dev.size)), feats]
            )
            rows.append(block)
            labels.append(src.dataset.best_config_indices())
        self._classifier = RandomForestClassifier(
            n_estimators=self.n_estimators,
            random_state=derive_seed(self.random_state, "onboard", "transfer"),
        )
        self._classifier.fit(np.vstack(rows), np.concatenate(labels))
        return self

    def _features(
        self, spec: DeviceSpec, shapes: Sequence[GemmShape]
    ) -> np.ndarray:
        dev = device_features(spec)
        feats = np.vstack([shape_features(s) for s in shapes])
        return np.hstack(
            [np.broadcast_to(dev, (len(feats), dev.size)), feats]
        )

    def predict_indices(
        self, spec: DeviceSpec, shapes: Sequence[GemmShape]
    ) -> np.ndarray:
        """Predicted best-config positions in the shared config tuple."""
        return self._classifier.predict(
            self._features(spec, tuple(shapes))
        ).astype(np.int64)

    def predict_configs(
        self, spec: DeviceSpec, shapes: Sequence[GemmShape]
    ) -> Tuple[KernelConfig, ...]:
        indices = self.predict_indices(spec, shapes)
        return tuple(self.configs_[int(i)] for i in indices)

    def score(self, spec: DeviceSpec, truth: PerformanceDataset) -> float:
        """Geomean normalized performance of the zero-shot picks."""
        from repro.utils.maths import geometric_mean

        indices = self.predict_indices(spec, truth.shapes)
        normalized = truth.normalized()
        achieved = normalized[np.arange(truth.n_shapes), indices]
        return float(geometric_mean(np.maximum(achieved, 1e-9)))
