"""Budgeted cell samplers: which (shape, config) cells to benchmark.

A sampler turns a cell budget into a concrete set of ``(row, col)``
cells of the performance table, deterministically from a seed
(:func:`repro.utils.rng.stream`, so the choice is stable across
processes and platforms).  Every plan guarantees at least one cell per
shape row — the partial sweep must stay a constructible
:class:`~repro.core.dataset.PerformanceDataset` (no all-NaN rows).

Three strategies, matching ROADMAP item 2:

* ``random`` — seeded uniform without replacement; the baseline every
  smarter sampler must beat.
* ``stratified`` — shapes are grouped into families (log2 size
  buckets); each family walks its own seeded permutation of the config
  space, so a family's rows collectively cover the configuration axis
  evenly instead of leaving clusters unmeasured.
* ``active`` — uncertainty-driven: the warm start is stratified, then
  each refinement round measures the cells where the imputation
  forest's trees disagree most, weighted toward cells predicted to be
  near their row's best (a wrong winner costs selector quality; a wrong
  also-ran does not).  The measurement loop lives in
  :mod:`repro.onboard.sweep`; this module supplies the pure cell picks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.onboard.budget import SAMPLERS
from repro.utils.rng import stream
from repro.workloads.gemm import GemmShape

__all__ = [
    "pick_informative_cells",
    "plan_cells",
    "shape_family",
]


def shape_family(shape: GemmShape) -> Tuple[int, int, int, int]:
    """A coarse size-class key: log2 buckets of (m, k, n) plus batching.

    Shapes from the same network layer family (e.g. the stack of
    convolution-as-GEMM shapes that only differ in spatial extent) land
    in nearby buckets, so stratifying over families spreads the budget
    across genuinely different performance regimes instead of spending
    it all on the most numerous layer type.
    """
    return (
        int(np.log2(max(1, shape.m))),
        int(np.log2(max(1, shape.k))),
        int(np.log2(max(1, shape.n))),
        int(shape.batch > 1),
    )


def _quotas(n_rows: int, n_cells: int, order: np.ndarray) -> np.ndarray:
    """Per-row cell quotas: the budget split as evenly as possible.

    Every row gets at least one cell; the remainder lands one cell at a
    time along ``order`` (a seeded permutation, so no row index is
    systematically favoured).
    """
    base = n_cells // n_rows
    quotas = np.full(n_rows, base, dtype=np.int64)
    extra = n_cells - base * n_rows
    if extra:
        quotas[order[:extra]] += 1
    return quotas


def _random_plan(
    n_rows: int, n_cols: int, n_cells: int, rng: np.random.Generator
) -> np.ndarray:
    # One guaranteed cell per row, then uniform over the remaining pool.
    first = rng.integers(0, n_cols, size=n_rows)
    flat = np.arange(n_rows, dtype=np.int64) * n_cols + first
    remaining = n_cells - n_rows
    if remaining > 0:
        pool = np.setdiff1d(
            np.arange(n_rows * n_cols, dtype=np.int64), flat
        )
        flat = np.concatenate(
            [flat, rng.choice(pool, size=remaining, replace=False)]
        )
    return flat


def _stratified_plan(
    shapes: Sequence[GemmShape],
    n_cols: int,
    n_cells: int,
    rng: np.random.Generator,
) -> np.ndarray:
    n_rows = len(shapes)
    order = rng.permutation(n_rows)
    quotas = _quotas(n_rows, n_cells, order)
    families: Dict[Tuple[int, int, int, int], List[int]] = {}
    for i, shape in enumerate(shapes):
        families.setdefault(shape_family(shape), []).append(i)
    flat: List[np.ndarray] = []
    for key in sorted(families):
        rows = families[key]
        # The family's rows walk one shared permutation of the config
        # axis: consecutive quotas take consecutive permutation slices,
        # so min(family budget, n_cols) distinct configs get measured.
        perm = rng.permutation(n_cols)
        cursor = 0
        for row in rows:
            take = int(quotas[row])
            idx = (cursor + np.arange(take)) % n_cols
            cols = np.unique(perm[idx])
            flat.append(row * n_cols + cols.astype(np.int64))
            cursor += take
    return np.concatenate(flat)


def plan_cells(
    sampler: str,
    shapes: Sequence[GemmShape],
    n_configs: int,
    n_cells: int,
    seed: int,
) -> np.ndarray:
    """The (sorted, unique) flat cell indices one sampler measures.

    For ``active`` this is only the warm start (the stratified plan);
    refinement rounds are chosen online by
    :func:`~repro.onboard.sweep.run_partial_sweep` via
    :func:`pick_informative_cells`.  Flat index = ``row * n_configs +
    col``; decode with ``divmod``.
    """
    if sampler not in SAMPLERS:
        raise ValueError(
            f"unknown sampler {sampler!r}; known: {list(SAMPLERS)}"
        )
    n_rows = len(shapes)
    if n_rows == 0 or n_configs == 0:
        raise ValueError("shapes and configs must be non-empty")
    n_cells = min(n_cells, n_rows * n_configs)
    if n_cells < n_rows:
        raise ValueError(
            f"budget of {n_cells} cells cannot cover {n_rows} shapes "
            "(need at least one cell per shape)"
        )
    rng = stream(seed, "onboard", "plan", sampler)
    if sampler == "random":
        flat = _random_plan(n_rows, n_configs, n_cells, rng)
    else:  # stratified, and the active sampler's warm start
        flat = _stratified_plan(shapes, n_configs, n_cells, rng)
    return np.unique(flat)


def pick_informative_cells(
    score: np.ndarray, measured: np.ndarray, k: int
) -> np.ndarray:
    """Flat indices of the ``k`` highest-scoring unmeasured cells.

    ``score`` is the active sampler's acquisition value per cell
    (ensemble disagreement weighted by predicted closeness to the row
    winner); ``measured`` masks cells already benchmarked.  Ties break
    toward the lower flat index (stable sort), keeping round contents
    deterministic.
    """
    if score.shape != measured.shape:
        raise ValueError(
            f"score {score.shape} and measured {measured.shape} differ"
        )
    flat_score = np.where(measured, -np.inf, score).ravel()
    candidates = np.flatnonzero(np.isfinite(flat_score))
    if k >= len(candidates):
        return np.sort(candidates)
    order = np.argsort(-flat_score[candidates], kind="stable")
    return np.sort(candidates[order[:k]])
