"""The onboarding branch of the fleet DAG.

Onboarding a device ``t`` adds a second, budgeted branch next to its
full-sweep branch::

    onboard-budget@t -> onboard-sweep@t -> onboard-dataset@t
        -> onboard-split@t -> onboard-prune@t -> onboard-train@t
        -> onboard-report@t

The branch roots at a content-addressed :class:`OnboardBudget` params
artifact: changing the budget (fraction, sampler, seed, forest knobs)
re-fingerprints — and re-runs — exactly the ``onboard-*`` stages of
exactly that device, while every full-sweep branch and every other
device stay 100% cache hits.  The sweep and dataset stages additionally
depend on the *source* devices' ``profile@s``/``dataset@s`` artifacts
(the imputation model learns from them), so retuning a source device
correctly invalidates the onboarded dataset too.

The report stage closes the loop against ground truth: it compares the
budgeted selector with the device's full-sweep selector on the full
branch's held-out test shapes (see :mod:`repro.onboard.report`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.bench.runner import BenchmarkRunner
from repro.core.dataset import split_stage
from repro.core.deploy import prune_stage, train_stage
from repro.fleet.pipeline import (
    FleetPipelineConfig,
    fleet_params,
    fleet_pipeline,
    parse_stage_name,
    stage_name,
)
from repro.fleet.profile import DeviceProfile
from repro.onboard.budget import OnboardBudget
from repro.onboard.impute import SourceBranch
from repro.onboard.report import build_report
from repro.onboard.sweep import run_partial_sweep
from repro.onboard.transfer import TransferSelector, calibrated_dataset
from repro.pipeline.artifact import Artifact
from repro.pipeline.executor import PipelineExecutor, PipelineRun
from repro.pipeline.stage import Pipeline, Stage
from repro.pipeline.store import ArtifactStore
from repro.workloads.extract import extract_dataset_shapes

__all__ = [
    "ONBOARD_STAGES",
    "OnboardPipelineConfig",
    "OnboardRun",
    "onboard_fingerprints",
    "onboard_params",
    "onboard_pipeline",
    "run_onboard_pipeline",
]

#: Per-target onboard stage kinds, in branch order.
ONBOARD_STAGES: Tuple[str, ...] = (
    "onboard-budget",
    "onboard-sweep",
    "onboard-dataset",
    "onboard-split",
    "onboard-prune",
    "onboard-train",
    "onboard-report",
)


def _collect(inputs: Mapping[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Group suffixed inputs by stage kind: ``{kind: {device_id: value}}``.

    Onboard stages take several same-kind inputs (one ``dataset@s`` per
    source device), so the fleet module's flat re-keying would collide;
    this keeps the device axis.
    """
    grouped: Dict[str, Dict[str, Any]] = {}
    for name, value in inputs.items():
        kind, device_id = parse_stage_name(name)
        grouped.setdefault(kind, {})[device_id] = value
    return grouped


def _source_branches(
    grouped: Mapping[str, Mapping[str, Any]], target: str
) -> Tuple[SourceBranch, ...]:
    profiles = grouped.get("profile", {})
    datasets = grouped.get("dataset", {})
    return tuple(
        SourceBranch(
            device_id=did,
            spec=profiles[did].spec,
            dataset=datasets[did],
        )
        for did in sorted(datasets)
        if did != target
    )


# -- onboard stage functions (module-level for process-pool pickling) ---------


def onboard_budget_stage(inputs, params, options) -> OnboardBudget:
    """Pipeline stage: the budget itself, as the branch's root artifact."""
    return params["budget"]


def onboard_sweep_stage(inputs, params, options):
    """Pipeline stage: the budgeted partial benchmark on the target."""
    grouped = _collect(inputs)
    target = params["target"]
    profile: DeviceProfile = grouped["profile"][target]
    budget: OnboardBudget = next(iter(grouped["onboard-budget"].values()))
    sources = _source_branches(grouped, target)
    shapes, _ = extract_dataset_shapes(networks=tuple(params["networks"]))
    runner = BenchmarkRunner(
        profile.device(),
        configs=params.get("configs"),
        runner_config=params["runner"],
        model_params=profile.model_params,
    )
    return run_partial_sweep(runner, shapes, budget, sources=sources)


def onboard_dataset_stage(inputs, params, options):
    """Pipeline stage: impute + calibrate the partial sweep to a full table."""
    grouped = _collect(inputs)
    target = params["target"]
    profile: DeviceProfile = grouped["profile"][target]
    budget: OnboardBudget = next(iter(grouped["onboard-budget"].values()))
    sweep = next(iter(grouped["onboard-sweep"].values()))
    sources = _source_branches(grouped, target)
    return calibrated_dataset(
        sources, profile.spec, sweep, budget, seed=budget.seed
    )


def onboard_split_stage(inputs, params, options):
    grouped = _collect(inputs)
    dataset = next(iter(grouped["onboard-dataset"].values()))
    return split_stage({"dataset": dataset}, params, options)


def onboard_prune_stage(inputs, params, options):
    grouped = _collect(inputs)
    split = next(iter(grouped["onboard-split"].values()))
    return prune_stage({"split": split}, params, options)


def onboard_train_stage(inputs, params, options):
    grouped = _collect(inputs)
    return train_stage(
        {
            "split": next(iter(grouped["onboard-split"].values())),
            "prune": next(iter(grouped["onboard-prune"].values())),
        },
        params,
        options,
    )


def onboard_report_stage(inputs, params, options):
    """Pipeline stage: score the budgeted selector against ground truth."""
    grouped = _collect(inputs)
    target = params["target"]
    budget: OnboardBudget = next(iter(grouped["onboard-budget"].values()))
    sweep = next(iter(grouped["onboard-sweep"].values()))
    onboard_selector = next(iter(grouped["onboard-train"].values()))
    full_selector = grouped["train"][target]
    truth_split = grouped["split"][target]
    zero_shot_score = None
    if params.get("zero_shot", True):
        sources = _source_branches(grouped, target)
        if sources:
            transfer = TransferSelector(
                random_state=params.get("random_state", 0)
            ).fit(sources)
            profile: DeviceProfile = grouped["profile"][target]
            zero_shot_score = transfer.score(profile.spec, truth_split.test)
    return build_report(
        device_id=target,
        budget=budget,
        sweep=sweep,
        onboard=onboard_selector,
        full=full_selector,
        truth_split=truth_split,
        zero_shot_score=zero_shot_score,
    )


# -- configuration ------------------------------------------------------------


@dataclass(frozen=True)
class OnboardPipelineConfig:
    """Every fingerprinted knob of an onboarding run.

    ``target`` is the device being onboarded; ``sources`` are the
    existing fleet devices the imputation model learns from (default:
    every fleet device except the target).  The underlying ``fleet``
    config must include the target — its full-sweep branch is the
    ground truth the report stage scores against.
    """

    target: str
    budget: OnboardBudget = field(default_factory=OnboardBudget)
    sources: Optional[Tuple[str, ...]] = None
    fleet: FleetPipelineConfig = field(default_factory=FleetPipelineConfig)
    zero_shot: bool = True

    def __post_init__(self) -> None:
        fleet_ids = tuple(p.device_id for p in self.fleet.profiles())
        if self.target not in fleet_ids:
            raise ValueError(
                f"target {self.target!r} has no fleet branch; known "
                f"devices: {list(fleet_ids)}"
            )
        for src in self.source_ids():
            if src not in fleet_ids:
                raise ValueError(
                    f"source {src!r} has no fleet branch; known devices: "
                    f"{list(fleet_ids)}"
                )
        if self.target in self.source_ids():
            raise ValueError(
                f"target {self.target!r} cannot be its own source"
            )
        if not self.source_ids():
            raise ValueError(
                "onboarding needs at least one source device to learn from"
            )

    def source_ids(self) -> Tuple[str, ...]:
        if self.sources is not None:
            return tuple(self.sources)
        return tuple(
            p.device_id
            for p in self.fleet.profiles()
            if p.device_id != self.target
        )

    def with_budget(self, **changes: Any) -> "OnboardPipelineConfig":
        """This config with budget knobs replaced (fingerprint-changing)."""
        return replace(self, budget=replace(self.budget, **changes))


def onboard_pipeline(config: OnboardPipelineConfig) -> Pipeline:
    """The fleet DAG plus the target's budgeted onboarding branch."""
    pipeline = fleet_pipeline(config.fleet)
    t = config.target
    sources = config.source_ids()
    source_inputs = tuple(stage_name("profile", s) for s in sources) + tuple(
        stage_name("dataset", s) for s in sources
    )
    pipeline.add(
        Stage(stage_name("onboard-budget", t), onboard_budget_stage, ())
    )
    pipeline.add(
        Stage(
            stage_name("onboard-sweep", t),
            onboard_sweep_stage,
            (
                stage_name("onboard-budget", t),
                stage_name("profile", t),
            )
            + source_inputs,
            codec="partial-sweep",
        )
    )
    pipeline.add(
        Stage(
            stage_name("onboard-dataset", t),
            onboard_dataset_stage,
            (
                stage_name("onboard-budget", t),
                stage_name("onboard-sweep", t),
                stage_name("profile", t),
            )
            + source_inputs,
            codec="dataset",
        )
    )
    pipeline.add(
        Stage(
            stage_name("onboard-split", t),
            onboard_split_stage,
            (stage_name("onboard-dataset", t),),
            codec="split",
        )
    )
    pipeline.add(
        Stage(
            stage_name("onboard-prune", t),
            onboard_prune_stage,
            (stage_name("onboard-split", t),),
        )
    )
    pipeline.add(
        Stage(
            stage_name("onboard-train", t),
            onboard_train_stage,
            (
                stage_name("onboard-split", t),
                stage_name("onboard-prune", t),
            ),
            codec="selector",
        )
    )
    pipeline.add(
        Stage(
            stage_name("onboard-report", t),
            onboard_report_stage,
            (
                stage_name("onboard-budget", t),
                stage_name("onboard-sweep", t),
                stage_name("onboard-train", t),
                stage_name("train", t),
                stage_name("split", t),
                stage_name("profile", t),
            )
            + source_inputs,
            codec="onboard-report",
        )
    )
    return pipeline


def onboard_params(config: OnboardPipelineConfig) -> Dict[str, Any]:
    """Per-stage parameters: the fleet assignment plus the onboard branch."""
    params = fleet_params(config.fleet)
    t = config.target
    fleet = config.fleet
    params[stage_name("onboard-budget", t)] = {"budget": config.budget}
    params[stage_name("onboard-sweep", t)] = {
        "target": t,
        "networks": tuple(fleet.networks),
        "runner": fleet.runner,
        "configs": fleet.configs,
    }
    params[stage_name("onboard-dataset", t)] = {"target": t}
    params[stage_name("onboard-split", t)] = {
        "test_size": fleet.test_size,
        "split_seed": fleet.split_seed,
    }
    params[stage_name("onboard-prune", t)] = {
        "pruner": fleet.pruner,
        "budget": fleet.budget,
        "random_state": fleet.random_state,
    }
    params[stage_name("onboard-train", t)] = {
        "classifier": fleet.classifier,
        "random_state": fleet.random_state,
    }
    params[stage_name("onboard-report", t)] = {
        "target": t,
        "zero_shot": config.zero_shot,
        "random_state": fleet.random_state,
    }
    return params


def onboard_fingerprints(config: OnboardPipelineConfig) -> Dict[str, str]:
    """Content address of every stage (fleet and onboard) under ``config``."""
    return onboard_pipeline(config).fingerprints(onboard_params(config))


@dataclass(frozen=True)
class OnboardRun:
    """One onboarding build: the run plus target-branch accessors."""

    run: PipelineRun
    target: str
    sources: Tuple[str, ...]

    @property
    def stats(self):
        return self.run.stats

    def artifact(self, stage: str) -> Artifact:
        return self.run.artifacts[stage_name(stage, self.target)]

    def value(self, stage: str) -> Any:
        return self.artifact(stage).value

    def report(self):
        """The terminal :class:`~repro.onboard.report.OnboardReport`."""
        return self.value("onboard-report")

    def selector(self):
        """The budgeted branch's :class:`DeployedSelector`."""
        return self.value("onboard-train")


def run_onboard_pipeline(
    store: ArtifactStore,
    config: OnboardPipelineConfig,
    *,
    max_workers: int = 1,
    force: bool = False,
    registry=None,
    tracer=None,
) -> OnboardRun:
    """Build (or incrementally resume) the target's onboarding branch.

    Runs the whole DAG — fleet branches are cache hits when already
    built, so an onboarding rerun after a budget change executes only
    the ``onboard-*`` stages of the target.
    """
    executor = PipelineExecutor(
        store, max_workers=max_workers, registry=registry, tracer=tracer
    )
    run = executor.run(
        onboard_pipeline(config), onboard_params(config), force=force
    )
    return OnboardRun(run=run, target=config.target, sources=config.source_ids())
