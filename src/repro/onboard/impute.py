"""Cross-device imputation: fill unmeasured cells from the fleet.

The model behind onboarding (Lawson's follow-up, arXiv:2008.13145):
one :class:`~repro.ml.forest.RandomForestRegressor` fit jointly over
every existing device's full performance table plus the new device's
budgeted measurements, regressing ``log(gflops)`` on

* **device features** — the :class:`~repro.sycl.device.DeviceSpec`
  axes that change which kernel wins (CUs, clock, peak rate, DRAM
  bandwidth, launch overhead, sustained efficiencies, cache/LDS sizes);
* **shape features** — log-scaled GEMM dimensions, flop count and
  arithmetic intensity;
* **config features** — tile/work-group parameters and their derived
  register/occupancy quantities;
* **a collaborative prior** — the geometric-mean normalized score of
  the (shape, config) cell across the *other* devices' tables (for a
  source device's own training rows the device itself is left out, so
  the prior never leaks the row's label), plus its cross-device spread.

Unmeasured cells are NaN, exactly the masking convention of
:meth:`PerformanceDataset.normalized`: NaN rows/cells never contribute
training rows, and imputation writes predictions only into NaN cells —
measured values always win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import PerformanceDataset
from repro.kernels.params import KernelConfig
from repro.ml.forest import RandomForestRegressor
from repro.onboard.budget import OnboardBudget
from repro.sycl.device import DeviceSpec
from repro.utils.rng import derive_seed
from repro.workloads.gemm import GemmShape

__all__ = [
    "CellFeaturizer",
    "ImputationModel",
    "SourceBranch",
    "impute_dataset",
]

#: Floor for normalized scores entering geometric means (masked-failure
#: cells are 0.0 after ``normalized()``).
_EPS = 1e-6


@dataclass(frozen=True)
class SourceBranch:
    """One existing fleet device the imputer can learn from."""

    device_id: str
    spec: DeviceSpec
    dataset: PerformanceDataset

    def __post_init__(self) -> None:
        if self.dataset.n_shapes == 0:
            raise ValueError(f"source {self.device_id!r} has an empty dataset")


def device_features(spec: DeviceSpec) -> np.ndarray:
    """The spec axes the transfer model conditions on (log-scaled)."""
    return np.array(
        [
            np.log2(spec.compute_units),
            spec.clock_ghz,
            np.log2(spec.peak_gflops),
            np.log2(spec.dram_bandwidth_gbps),
            np.log1p(spec.kernel_launch_overhead_us),
            spec.sustained_compute_efficiency,
            spec.sustained_bandwidth_efficiency,
            np.log2(spec.lds_bytes_per_cu),
            np.log2(spec.l2_bytes),
            np.log2(spec.max_work_group_size),
            # Machine balance: flops available per DRAM byte.
            np.log2(spec.peak_gflops / spec.dram_bandwidth_gbps),
        ]
    )


def shape_features(shape: GemmShape) -> np.ndarray:
    return np.array(
        [
            np.log2(shape.m),
            np.log2(shape.k),
            np.log2(shape.n),
            np.log2(shape.batch),
            np.log2(shape.flops),
            np.log2(max(_EPS, shape.arithmetic_intensity)),
        ]
    )


def config_features(config: KernelConfig) -> np.ndarray:
    macro_rows, macro_cols = config.macro_tile
    return np.array(
        [
            config.acc,
            config.rows,
            config.cols,
            np.log2(config.wg_rows),
            np.log2(config.wg_cols),
            np.log2(config.tile_elems),
            np.log2(config.work_group_size),
            np.log2(macro_rows),
            np.log2(macro_cols),
            config.registers_per_item,
        ]
    )


class CellFeaturizer:
    """Vectorized (device, shape, config, prior) feature assembly.

    Shape and config blocks are computed once per table geometry and
    broadcast over the cell grid; only the device block and the
    collaborative prior change between devices.
    """

    def __init__(
        self,
        shapes: Sequence[GemmShape],
        configs: Sequence[KernelConfig],
    ):
        self.shapes = tuple(shapes)
        self.configs = tuple(configs)
        self.n_shapes = len(self.shapes)
        self.n_configs = len(self.configs)
        shape_block = np.vstack([shape_features(s) for s in self.shapes])
        config_block = np.vstack([config_features(c) for c in self.configs])
        # Cell grid in row-major order: shape index varies slowest.
        self._shape_grid = np.repeat(shape_block, self.n_configs, axis=0)
        self._config_grid = np.tile(config_block, (self.n_shapes, 1))

    def cell_matrix(
        self,
        spec: DeviceSpec,
        prior_mean: np.ndarray,
        prior_std: np.ndarray,
    ) -> np.ndarray:
        """(n_shapes * n_configs, n_features) for one device."""
        n_cells = self.n_shapes * self.n_configs
        dev_vec = device_features(spec)
        dev = np.broadcast_to(dev_vec, (n_cells, dev_vec.size))
        return np.hstack(
            [
                dev,
                self._shape_grid,
                self._config_grid,
                prior_mean.reshape(n_cells, 1),
                prior_std.reshape(n_cells, 1),
            ]
        )


def _log_normalized(dataset: PerformanceDataset) -> np.ndarray:
    """log of the per-shape normalized table, NaN-masked cells floored."""
    return np.log(np.maximum(dataset.normalized(), _EPS))


def _leave_one_out_prior(
    log_norms: List[np.ndarray],
) -> Tuple[List[np.ndarray], List[np.ndarray], np.ndarray, np.ndarray]:
    """Collaborative priors: per-source leave-one-out and all-source.

    Returns ``(loo_means, loo_stds, all_mean, all_std)`` where means are
    geometric means of the normalized scores (computed in log space)
    and stds are the cross-device spread of the log scores.
    """
    stack = np.stack(log_norms)  # (n_sources, n_shapes, n_configs)
    n = stack.shape[0]
    total = stack.sum(axis=0)
    all_mean = total / n
    all_std = stack.std(axis=0) if n > 1 else np.zeros_like(total)
    loo_means: List[np.ndarray] = []
    loo_stds: List[np.ndarray] = []
    for i in range(n):
        if n == 1:
            loo_means.append(np.zeros_like(total))
            loo_stds.append(np.zeros_like(total))
            continue
        others = total - stack[i]
        loo_means.append(others / (n - 1))
        if n == 2:
            loo_stds.append(np.zeros_like(total))
        else:
            mask = np.ones(n, dtype=bool)
            mask[i] = False
            loo_stds.append(stack[mask].std(axis=0))
    return loo_means, loo_stds, all_mean, all_std


class ImputationModel:
    """The joint forest over all devices, ready to score the target.

    Fit with :meth:`fit`; the target's full prediction grid (and the
    ensemble's disagreement, the active sampler's acquisition signal)
    comes from :meth:`predict_target`.
    """

    def __init__(self, budget: Optional[OnboardBudget] = None):
        self.budget = budget if budget is not None else OnboardBudget()

    def fit(
        self,
        sources: Sequence[SourceBranch],
        target_spec: DeviceSpec,
        target_partial: Optional[PerformanceDataset] = None,
        *,
        seed: int = 0,
    ) -> "ImputationModel":
        if not sources:
            raise ValueError("imputation needs at least one source branch")
        ref = sources[0].dataset
        for src in sources[1:]:
            if (
                src.dataset.shapes != ref.shapes
                or src.dataset.configs != ref.configs
            ):
                raise ValueError(
                    f"source {src.device_id!r} table geometry differs from "
                    f"{sources[0].device_id!r}; fleet branches must share "
                    "shapes and configs"
                )
        if target_partial is not None and (
            target_partial.shapes != ref.shapes
            or target_partial.configs != ref.configs
        ):
            raise ValueError(
                "target partial sweep geometry differs from the sources"
            )
        self._featurizer = CellFeaturizer(ref.shapes, ref.configs)
        feat = self._featurizer
        log_norms = [_log_normalized(s.dataset) for s in sources]
        loo_means, loo_stds, all_mean, all_std = _leave_one_out_prior(
            log_norms
        )
        self._target_prior = (all_mean, all_std)

        rows: List[np.ndarray] = []
        targets: List[np.ndarray] = []
        for src, loo_mean, loo_std in zip(sources, loo_means, loo_stds):
            X = feat.cell_matrix(src.spec, loo_mean, loo_std)
            y = np.log(src.dataset.gflops).ravel()
            keep = np.isfinite(y)
            rows.append(X[keep])
            targets.append(y[keep])
        if target_partial is not None:
            X = feat.cell_matrix(target_spec, all_mean, all_std)
            y = np.log(target_partial.gflops).ravel()
            keep = np.isfinite(y)
            rows.append(X[keep])
            targets.append(y[keep])
        self._target_spec = target_spec

        budget = self.budget
        self._forest = RandomForestRegressor(
            n_estimators=budget.n_trees,
            max_depth=budget.max_depth,
            max_samples=budget.max_samples,
            max_features="sqrt",
            random_state=derive_seed(seed, "onboard", "impute"),
        )
        self._forest.fit(np.vstack(rows), np.concatenate(targets))
        return self

    @property
    def featurizer(self) -> CellFeaturizer:
        return self._featurizer

    def predict_target(self) -> Tuple[np.ndarray, np.ndarray]:
        """(log-gflops prediction, ensemble std), both (n_shapes, n_configs)."""
        feat = self._featurizer
        mean_prior, std_prior = self._target_prior
        X = feat.cell_matrix(self._target_spec, mean_prior, std_prior)
        mean, std = self._forest.predict_with_std(X)
        grid = (feat.n_shapes, feat.n_configs)
        return mean.reshape(grid), std.reshape(grid)


def impute_dataset(
    partial: PerformanceDataset, predicted_log_gflops: np.ndarray
) -> PerformanceDataset:
    """Fill the partial table's NaN cells from the model's predictions.

    Measured cells are kept verbatim — imputation only ever writes where
    the sweep did not measure (or the measurement failed), matching the
    NaN semantics of :meth:`PerformanceDataset.normalized`.
    """
    expected = (partial.n_shapes, partial.n_configs)
    if predicted_log_gflops.shape != expected:
        raise ValueError(
            f"prediction grid {predicted_log_gflops.shape} does not match "
            f"the dataset {expected}"
        )
    gflops = partial.gflops.copy()
    missing = ~np.isfinite(gflops)
    gflops[missing] = np.exp(predicted_log_gflops[missing])
    return PerformanceDataset(
        shapes=partial.shapes,
        configs=partial.configs,
        gflops=gflops,
        device_name=partial.device_name,
    )
