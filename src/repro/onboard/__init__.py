"""ML-guided device onboarding: budgeted partial sweeps instead of 640 cells.

ROADMAP item 2 delivered as a subsystem: when a new device joins the
fleet, benchmark only a budgeted fraction of the (shape x config) table
— picked by a seeded sampler — and fill the rest with a cross-device
imputation model trained jointly on every existing device's data, plus
a few-shot residual calibration from the cells actually measured.  The
result flows through the unchanged prune/train pipeline and is scored
against the device's full-sweep selector by a report artifact.

Layers:

* :mod:`repro.onboard.budget` — :class:`OnboardBudget`, the
  content-addressed root params of an onboarding branch;
* :mod:`repro.onboard.sampler` — seeded random / stratified / active
  cell plans;
* :mod:`repro.onboard.sweep` — :class:`PartialSweep` and the budgeted
  measurement loop (active refinement rounds included);
* :mod:`repro.onboard.impute` — the joint cross-device forest;
* :mod:`repro.onboard.transfer` — few-shot residual calibration and the
  zero-shot :class:`TransferSelector` baseline;
* :mod:`repro.onboard.report` — :class:`OnboardReport`, quality versus
  the full sweep;
* :mod:`repro.onboard.pipeline` — the ``onboard-*@device`` stages of the
  fleet DAG and :func:`run_onboard_pipeline`.
"""

from repro.onboard.budget import SAMPLERS, OnboardBudget
from repro.onboard.impute import (
    CellFeaturizer,
    ImputationModel,
    SourceBranch,
    impute_dataset,
)
from repro.onboard.pipeline import (
    ONBOARD_STAGES,
    OnboardPipelineConfig,
    OnboardRun,
    onboard_fingerprints,
    onboard_params,
    onboard_pipeline,
    run_onboard_pipeline,
)
from repro.onboard.report import OnboardReport, build_report
from repro.onboard.sampler import pick_informative_cells, plan_cells, shape_family
from repro.onboard.sweep import PartialSweep, measure_cells, run_partial_sweep
from repro.onboard.transfer import (
    ResidualCorrection,
    TransferSelector,
    calibrated_dataset,
    fit_residual_correction,
)

__all__ = [
    "CellFeaturizer",
    "ImputationModel",
    "ONBOARD_STAGES",
    "OnboardBudget",
    "OnboardPipelineConfig",
    "OnboardReport",
    "OnboardRun",
    "PartialSweep",
    "ResidualCorrection",
    "SAMPLERS",
    "SourceBranch",
    "TransferSelector",
    "build_report",
    "calibrated_dataset",
    "fit_residual_correction",
    "impute_dataset",
    "measure_cells",
    "onboard_fingerprints",
    "onboard_params",
    "onboard_pipeline",
    "pick_informative_cells",
    "plan_cells",
    "run_onboard_pipeline",
    "run_partial_sweep",
    "shape_family",
]
