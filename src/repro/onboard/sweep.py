"""Budgeted partial sweeps: measure a cell subset, leave the rest NaN.

:func:`run_partial_sweep` is the onboarding counterpart of
:meth:`BenchmarkRunner.run`: instead of the full (shape x config)
table it benchmarks only the cells a sampler picked under an
:class:`~repro.onboard.budget.OnboardBudget`.  Measured cells are
bit-identical to the full sweep's values (the runner's counter-based
noise depends only on the (shape, config) pair, never on which other
cells ran), so a partial sweep is exactly the full table with NaN holes
— the masking convention every downstream consumer already speaks.

The ``active`` sampler closes the loop: after a stratified warm start
it refits the cross-device imputation model on everything measured so
far and spends the next round's budget where the forest's trees
disagree most, weighted toward cells predicted to be near their row's
winner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.runner import BenchmarkRunner
from repro.core.dataset import PerformanceDataset
from repro.onboard.budget import OnboardBudget
from repro.onboard.impute import ImputationModel, SourceBranch
from repro.onboard.sampler import pick_informative_cells, plan_cells
from repro.sycl.exceptions import SyclError

__all__ = ["PartialSweep", "measure_cells", "run_partial_sweep"]


@dataclass(frozen=True)
class PartialSweep:
    """A budgeted sweep: the holey table plus how its cells were chosen.

    ``cells`` are the flat indices (``row * n_configs + col``) the
    sampler *attempted*, in sorted order; a cell whose measurement
    raised stays NaN in the table but remains listed (it consumed
    budget).  ``dataset`` is a normal
    :class:`~repro.core.dataset.PerformanceDataset` — NaN marks
    unmeasured or failed cells, and every row has at least one finite
    value by sampler construction.
    """

    dataset: PerformanceDataset
    cells: np.ndarray
    sampler: str
    seed: int
    failed: int = 0

    def __post_init__(self) -> None:
        if self.cells.ndim != 1:
            raise ValueError(f"cells must be 1-D, got shape {self.cells.shape}")

    @property
    def n_attempted(self) -> int:
        return int(self.cells.size)

    @property
    def n_measured(self) -> int:
        return int(np.isfinite(self.dataset.gflops).sum())

    @property
    def total_cells(self) -> int:
        return self.dataset.n_shapes * self.dataset.n_configs

    @property
    def fraction(self) -> float:
        """Share of the full table this sweep paid for."""
        return self.n_attempted / self.total_cells

    def measured_mask(self) -> np.ndarray:
        return np.isfinite(self.dataset.gflops)

    def __repr__(self) -> str:
        return (
            f"PartialSweep({self.n_attempted}/{self.total_cells} cells "
            f"({self.fraction:.1%}), sampler={self.sampler!r}, "
            f"device={self.dataset.device_name!r})"
        )


def measure_cells(
    runner: BenchmarkRunner,
    shapes: Sequence,
    flat_cells: np.ndarray,
    gflops: np.ndarray,
) -> int:
    """Benchmark the given flat cells into ``gflops`` in place.

    Returns the number of cells whose measurement raised a
    :class:`~repro.sycl.exceptions.SyclError` (left NaN, like the full
    runner's skip-and-record policy).
    """
    configs = runner.configs
    n_configs = len(configs)
    failed = 0
    for flat in flat_cells.tolist():
        row, col = divmod(int(flat), n_configs)
        shape = shapes[row]
        try:
            summary = runner.bench_single(shape, configs[col])
        except SyclError:
            failed += 1
            continue
        gflops[row, col] = shape.flops / summary.mean / 1e9
    return failed


def _acquisition(
    predicted_log: np.ndarray, std: np.ndarray
) -> np.ndarray:
    """Active-round score: ensemble disagreement, winner-weighted.

    A cell only matters to selector quality if it might be (near) its
    row's best, so the raw std is scaled by the predicted relative
    score squared — uncertainty about a config predicted at 30% of the
    row winner buys almost nothing.
    """
    rel = np.exp(predicted_log - predicted_log.max(axis=1, keepdims=True))
    return std * rel * rel


def run_partial_sweep(
    runner: BenchmarkRunner,
    shapes: Sequence,
    budget: OnboardBudget,
    *,
    sources: Optional[Sequence[SourceBranch]] = None,
    device_name: Optional[str] = None,
) -> PartialSweep:
    """Benchmark a budgeted cell subset on ``runner``'s device.

    ``random`` and ``stratified`` plan every cell up front;
    ``active`` needs ``sources`` (the existing fleet branches) to refit
    the imputation model between rounds.  The result is deterministic
    in (budget, seed, device): cell order never affects measured values.
    """
    shapes = tuple(shapes)
    configs = runner.configs
    n_rows, n_cols = len(shapes), len(configs)
    n_cells = budget.cells(n_rows, n_cols)
    name = device_name if device_name is not None else runner.device.name
    gflops = np.full((n_rows, n_cols), np.nan)

    if budget.sampler != "active":
        plan = plan_cells(budget.sampler, shapes, n_cols, n_cells, budget.seed)
        failed = measure_cells(runner, shapes, plan, gflops)
        return PartialSweep(
            dataset=PerformanceDataset(
                shapes=shapes, configs=tuple(configs), gflops=gflops,
                device_name=name,
            ),
            cells=plan,
            sampler=budget.sampler,
            seed=budget.seed,
            failed=failed,
        )

    if not sources:
        raise ValueError(
            "the active sampler refits the imputation model between "
            "rounds and therefore needs sources= (existing fleet branches)"
        )
    # Round quotas: the warm start takes the first share, later rounds
    # split the rest; every round gets at least one cell.
    per_round = _round_quotas(n_cells, budget.rounds, minimum_first=n_rows)
    warm = plan_cells("active", shapes, n_cols, per_round[0], budget.seed)
    failed = measure_cells(runner, shapes, warm, gflops)
    taken: List[np.ndarray] = [warm]
    spec = runner.device.spec
    for round_index, quota in enumerate(per_round[1:], start=1):
        partial = PerformanceDataset(
            shapes=shapes, configs=tuple(configs), gflops=gflops.copy(),
            device_name=name,
        )
        model = ImputationModel(budget).fit(
            tuple(sources), spec, partial,
            seed=budget.seed + round_index,
        )
        predicted, std = model.predict_target()
        attempted = np.zeros(gflops.shape, dtype=bool)
        attempted.ravel()[np.concatenate(taken)] = True
        picks = pick_informative_cells(
            _acquisition(predicted, std), attempted, quota
        )
        if picks.size == 0:
            break
        failed += measure_cells(runner, shapes, picks, gflops)
        taken.append(picks)
    cells = np.unique(np.concatenate(taken))
    return PartialSweep(
        dataset=PerformanceDataset(
            shapes=shapes, configs=tuple(configs), gflops=gflops,
            device_name=name,
        ),
        cells=cells,
        sampler=budget.sampler,
        seed=budget.seed,
        failed=failed,
    )


def _round_quotas(
    n_cells: int, rounds: int, *, minimum_first: int
) -> Tuple[int, ...]:
    """Split the budget over active rounds (warm start first)."""
    rounds = min(rounds, max(1, n_cells - minimum_first + 1))
    base = n_cells // rounds
    quotas = [base + (1 if i < n_cells % rounds else 0) for i in range(rounds)]
    # The warm start must cover every row once.
    if quotas[0] < minimum_first:
        deficit = minimum_first - quotas[0]
        quotas[0] = minimum_first
        for i in range(len(quotas) - 1, 0, -1):
            give = min(deficit, max(0, quotas[i] - 1))
            quotas[i] -= give
            deficit -= give
            if deficit == 0:
                break
    return tuple(q for q in quotas if q > 0)
