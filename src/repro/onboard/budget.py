"""The onboarding budget: every fingerprinted knob of a partial sweep.

:class:`OnboardBudget` is the root params artifact of a device's
``onboard-*`` branch in the fleet DAG (codec ``json``): the cell
fraction, the sampler, its seed, and the imputation-model knobs all
live here, so changing any of them re-fingerprints — and re-runs —
exactly the onboard stages of exactly that device, while every full
sweep branch stays a cache hit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OnboardBudget", "SAMPLERS"]

#: Known cell samplers, in increasing order of sophistication.
SAMPLERS = ("random", "stratified", "active")


@dataclass(frozen=True)
class OnboardBudget:
    """How much to measure when onboarding a device, and how.

    Attributes
    ----------
    fraction:
        Share of the full (shape x config) table to actually benchmark,
        in (0, 1].  ROADMAP item 2's headline setting is 0.10.
    sampler:
        Cell-picking strategy — ``random`` (seeded uniform baseline),
        ``stratified`` (per shape-family config coverage), or ``active``
        (uncertainty-driven: iteratively measure where the imputation
        model's ensemble disagrees most).
    seed:
        Root seed for the sampler's deterministic streams.
    rounds:
        Refinement rounds for the active sampler (ignored otherwise);
        round 1 is the stratified warm start, later rounds spend the
        remaining budget on the highest-uncertainty cells.
    n_trees / max_depth / max_samples:
        The imputation forest (see
        :class:`repro.ml.forest.RandomForestRegressor`).
    calibrate:
        Apply the few-shot per-config residual correction fitted on the
        measured cells (:mod:`repro.onboard.transfer`).
    """

    fraction: float = 0.10
    sampler: str = "active"
    seed: int = 0
    rounds: int = 4
    n_trees: int = 16
    max_depth: int = 14
    max_samples: int = 4096
    calibrate: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"fraction must be in (0, 1], got {self.fraction}"
            )
        if self.sampler not in SAMPLERS:
            raise ValueError(
                f"unknown sampler {self.sampler!r}; known: {list(SAMPLERS)}"
            )
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        for fld in ("n_trees", "max_depth", "max_samples"):
            if getattr(self, fld) < 1:
                raise ValueError(f"{fld} must be >= 1")

    def cells(self, n_shapes: int, n_configs: int) -> int:
        """The cell budget for one table, floored at one cell per shape.

        The floor keeps every partial sweep a constructible
        :class:`~repro.core.dataset.PerformanceDataset` (no all-NaN
        rows) and is capped at the full table.
        """
        total = n_shapes * n_configs
        want = int(round(self.fraction * total))
        return min(total, max(n_shapes, want))
