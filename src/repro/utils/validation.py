"""Argument-validation helpers shared by all estimators and models."""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.utils.rng import rng_from

__all__ = [
    "check_array",
    "check_in_range",
    "check_positive_int",
    "check_random_state",
]


def check_positive_int(value: int, name: str, *, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer ``>= minimum`` and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_in_range(
    value: float,
    name: str,
    *,
    low: float = -np.inf,
    high: float = np.inf,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Validate that a scalar lies in the given interval and return it."""
    value = float(value)
    ok_low = value >= low if low_inclusive else value > low
    ok_high = value <= high if high_inclusive else value < high
    if not (ok_low and ok_high):
        lo_b = "[" if low_inclusive else "("
        hi_b = "]" if high_inclusive else ")"
        raise ValueError(f"{name} must be in {lo_b}{low}, {high}{hi_b}, got {value}")
    return value


def check_array(
    data,
    *,
    name: str = "X",
    ndim: Optional[Union[int, Sequence[int]]] = 2,
    dtype=np.float64,
    allow_empty: bool = False,
    copy: bool = False,
) -> np.ndarray:
    """Coerce input into a finite ndarray of the expected dimensionality."""
    if copy:
        arr = np.array(data, dtype=dtype, copy=True)
    else:
        arr = np.asarray(data, dtype=dtype)
    if ndim is not None:
        allowed = (ndim,) if isinstance(ndim, int) else tuple(ndim)
        if arr.ndim not in allowed:
            raise ValueError(
                f"{name} must have ndim in {allowed}, got shape {arr.shape}"
            )
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.issubdtype(arr.dtype, np.floating) and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_random_state(random_state) -> np.random.Generator:
    """Alias of :func:`repro.utils.rng.rng_from` under the sklearn-style name."""
    return rng_from(random_state)
