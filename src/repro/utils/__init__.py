"""Shared utilities: deterministic RNG streams, validation, small math helpers.

These are deliberately dependency-light; every other subpackage builds on
them.  Nothing in here knows about kernels, devices or datasets.
"""

from repro.utils.rng import (
    derive_seed,
    rng_from,
    stream,
)
from repro.utils.validation import (
    check_array,
    check_in_range,
    check_positive_int,
    check_random_state,
)
from repro.utils.maths import (
    ceil_div,
    geometric_mean,
    round_up,
)

__all__ = [
    "ceil_div",
    "check_array",
    "check_in_range",
    "check_positive_int",
    "check_random_state",
    "derive_seed",
    "geometric_mean",
    "rng_from",
    "round_up",
    "stream",
]
