"""Deterministic, hierarchical random-number streams.

The benchmark substrate must reproduce the *identical* performance table on
every run (DESIGN.md section 5).  To get that without threading a single
mutable generator through the whole system — which would make results depend
on call order and break any parallel execution — we derive independent
streams from a root seed and a tuple of string/int keys, using NumPy's
``SeedSequence`` spawning-by-key mechanism.

Example
-------
>>> r1 = stream(42, "noise", "shape", 3, "config", 17)
>>> r2 = stream(42, "noise", "shape", 3, "config", 17)
>>> float(r1.standard_normal()) == float(r2.standard_normal())
True
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

Key = Union[int, str]

__all__ = ["derive_seed", "rng_from", "stream"]


def _key_bytes(*keys: Key) -> bytes:
    parts = []
    for key in keys:
        if isinstance(key, bool) or not isinstance(key, (int, str)):
            raise TypeError(f"stream keys must be int or str, got {type(key).__name__}")
        parts.append(str(key).encode("utf-8"))
    return b"\x1f".join(parts)


def derive_seed(root: int, *keys: Key) -> int:
    """Derive a 64-bit child seed from ``root`` and a key path.

    The derivation is a SHA-256 hash of the key path mixed with the root
    seed, so it is stable across processes, platforms and Python versions
    (unlike ``hash()``).
    """
    digest = hashlib.sha256(
        root.to_bytes(16, "little", signed=True) + b"|" + _key_bytes(*keys)
    ).digest()
    return int.from_bytes(digest[:8], "little")


def stream(root: int, *keys: Key) -> np.random.Generator:
    """Return an independent ``numpy.random.Generator`` for a key path.

    Streams for different key paths are statistically independent; streams
    for identical key paths are bit-identical.
    """
    return np.random.default_rng(np.random.SeedSequence(derive_seed(root, *keys)))


def rng_from(
    random_state: Union[None, int, np.random.Generator],
) -> np.random.Generator:
    """Coerce the usual ``random_state`` argument forms into a Generator.

    ``None`` yields a nondeterministic generator; an ``int`` seeds a fresh
    generator; an existing ``Generator`` is passed through unchanged.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int, or a numpy Generator, "
        f"got {type(random_state).__name__}"
    )
