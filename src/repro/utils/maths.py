"""Small numeric helpers used across the library."""

from __future__ import annotations

import numpy as np

__all__ = ["ceil_div", "geometric_mean", "round_up"]


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"numerator must be non-negative, got {a}")
    return -(-a // b)


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest multiple of ``multiple``."""
    return ceil_div(value, multiple) * multiple


def geometric_mean(values, *, axis=None) -> np.ndarray:
    """Geometric mean of strictly positive values.

    The paper scores pruning and selection techniques by the geometric mean
    of per-shape normalized performance; a geometric mean is the right
    aggregate for ratios because a 2x win on one shape exactly cancels a 2x
    loss on another.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric_mean of an empty array is undefined")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return np.exp(np.mean(np.log(arr), axis=axis))
