"""Fleet routing: dispatch selection traffic across many devices.

A :class:`FleetRouter` owns one :class:`SelectionService` per fleet
device and answers ``(device_id, shape)`` lookups:

* **targeted** requests name a device and are served by its service —
  unless that device's circuit breaker is open, in which case the
  request falls over to a healthy device (cross-device fallback);
* **device-agnostic** requests (``device_id=None``) are placed by a
  dispatch policy: ``round-robin`` (cycle the healthy devices),
  ``least-outstanding`` (fewest in-flight requests, see
  :meth:`FleetRouter.complete`), or ``perf-aware`` (the device whose
  performance model predicts the lowest runtime for the shape across
  its shipped kernel library).

Service exceptions never escape a routed lookup while any device is
healthy: the router catches, counts a reroute, and retries the next
candidate.  Dispatch accounting lives in a :mod:`repro.obs` registry
(per-device ``fleet.dispatched``/``fleet.outstanding``, per-policy
``fleet.placements``) and cross-device fallbacks emit ``fleet.reroute``
spans on the router's tracer; :meth:`FleetRouter.stats` stays a thin
view assembling the legacy :class:`~repro.serving.stats.FleetStats`
shape from those metrics and the per-device service snapshots.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.kernels.params import KernelConfig
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.serving.service import SelectionService
from repro.serving.stats import FleetStats
from repro.workloads.gemm import GemmShape

__all__ = ["FleetRouter", "ROUTING_POLICIES", "RoutedDecision"]

#: Dispatch policies for device-agnostic requests.
ROUTING_POLICIES: Tuple[str, ...] = (
    "round-robin",
    "least-outstanding",
    "perf-aware",
)


@dataclass(frozen=True)
class RoutedDecision:
    """One routed lookup: which device answered, with what.

    ``rerouted`` is True when the answering device is not the one the
    request targeted (or the policy's first choice) — i.e. cross-device
    fallback happened.
    """

    device_id: str
    config: KernelConfig
    rerouted: bool = False


class _DeviceEntry:
    """Router-side bookkeeping for one fleet device.

    Load accounting lives in registry metrics so a fleet-wide obs
    snapshot carries per-device dispatch counts without a separate
    stats pass; the router mutates them under its own lock.
    """

    def __init__(
        self,
        service: SelectionService,
        model,
        library,
        registry: MetricsRegistry,
        device_id: str,
    ):
        self.service = service
        self.model = model
        self.library = library
        labels = {"device": device_id}
        self.c_dispatched = registry.counter("fleet.dispatched", labels)
        self.g_outstanding = registry.gauge("fleet.outstanding", labels)

    @property
    def outstanding(self) -> int:
        return int(self.g_outstanding.value)

    @property
    def dispatched(self) -> int:
        return self.c_dispatched.value


class FleetRouter:
    """Routes selection traffic over a heterogeneous device fleet.

    Devices are added with :meth:`add_device`; each brings its
    :class:`SelectionService` and optionally the device's performance
    model (anything with ``time_seconds(shape, config)``) plus the
    kernel-config library the perf-aware policy estimates over.  When
    the service fronts a :class:`~repro.core.deploy.DeployedSelector`,
    the library defaults to the selector's bundled configurations.

    ``registry`` is where the router's dispatch metrics live (a private
    :class:`~repro.obs.MetricsRegistry` when omitted); share one with
    the devices' services to export the whole fleet as one snapshot.
    ``tracer`` receives ``fleet.reroute`` spans on cross-device
    fallback (dropped by default).
    """

    def __init__(
        self,
        *,
        default_policy: str = "round-robin",
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self._check_policy(default_policy)
        self._default_policy = default_policy
        self._devices: "OrderedDict[str, _DeviceEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self._registry = registry if registry is not None else MetricsRegistry()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        reg = self._registry
        self._c_targeted = reg.counter("fleet.requests", {"kind": "targeted"})
        self._c_agnostic = reg.counter("fleet.requests", {"kind": "agnostic"})
        self._c_rerouted = reg.counter("fleet.rerouted")
        self._c_placements = {
            policy: reg.counter("fleet.placements", {"policy": policy})
            for policy in ROUTING_POLICIES
        }
        self._rr_cursor = 0
        # (device_id, shape tuple) -> predicted best seconds on device.
        self._estimates: Dict[Tuple[str, Tuple[int, ...]], float] = {}

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry the router's dispatch counters live in."""
        return self._registry

    @property
    def tracer(self) -> Tracer:
        """The tracer receiving ``fleet.reroute`` spans."""
        return self._tracer

    @staticmethod
    def _check_policy(policy: str) -> None:
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; "
                f"known: {list(ROUTING_POLICIES)}"
            )

    # -- fleet membership ----------------------------------------------------

    def add_device(
        self,
        device_id: str,
        service: SelectionService,
        *,
        model=None,
        library: Optional[Sequence[KernelConfig]] = None,
    ) -> "FleetRouter":
        """Register one device; returns self for chaining."""
        if not device_id:
            raise ValueError("device_id must be non-empty")
        with self._lock:
            if device_id in self._devices:
                raise ValueError(f"device {device_id!r} is already routed")
            if library is None:
                bundled = getattr(service.policy, "library", None)
                if bundled is not None:
                    library = tuple(bundled.configs)
            self._devices[device_id] = _DeviceEntry(
                service,
                model,
                tuple(library) if library else None,
                self._registry,
                device_id,
            )
        return self

    @property
    def device_ids(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._devices)

    @property
    def default_policy(self) -> str:
        return self._default_policy

    def service(self, device_id: str) -> SelectionService:
        with self._lock:
            return self._entry(device_id).service

    def healthy_ids(self) -> Tuple[str, ...]:
        """Devices whose circuit breaker is currently closed."""
        with self._lock:
            ids = tuple(self._devices)
        return tuple(did for did in ids if not self._devices[did].service.breaker_open)

    def _entry(self, device_id: str) -> _DeviceEntry:
        try:
            return self._devices[device_id]
        except KeyError:
            raise KeyError(
                f"no device {device_id!r} in fleet; "
                f"routed: {list(self._devices)}"
            ) from None

    # -- dispatch ------------------------------------------------------------

    def select(
        self,
        shape: GemmShape,
        *,
        device_id: Optional[str] = None,
        policy: Optional[str] = None,
    ) -> RoutedDecision:
        """Route one lookup; never raises while a healthy device answers."""
        start = time.perf_counter()
        candidates, targeted = self._candidates(shape, device_id, policy)
        last_exc: Optional[BaseException] = None
        for position, did in enumerate(candidates):
            entry = self._devices[did]
            try:
                config = entry.service.select(shape)
            except Exception as exc:
                last_exc = exc
                self._c_rerouted.inc()
                continue
            rerouted = position > 0 or (targeted is not None and did != targeted)
            with self._lock:
                entry.c_dispatched.inc()
                entry.g_outstanding.inc()
                if rerouted and position == 0:
                    # Targeted at an open breaker: the fallback device
                    # answered first try, but it is still a reroute.
                    self._c_rerouted.inc()
            if rerouted:
                requested = targeted if targeted is not None else candidates[0]
                self._tracer.record(
                    "fleet.reroute",
                    time.perf_counter() - start,
                    tags={
                        "from": requested,
                        "to": did,
                        "reason": (
                            "exception" if position > 0 else "breaker-open"
                        ),
                    },
                )
            return RoutedDecision(device_id=did, config=config, rerouted=rerouted)
        assert last_exc is not None
        raise last_exc

    def select_batch(
        self,
        shapes: Sequence[GemmShape],
        *,
        device_id: Optional[str] = None,
        policy: Optional[str] = None,
    ) -> Tuple[RoutedDecision, ...]:
        """Route many lookups, one ``select_batch`` per chosen device.

        Shapes are partitioned across devices by the policy (or pinned
        by ``device_id``), then each device answers its partition in a
        single vectorized service call.  A device whose call fails has
        its partition rerouted wholesale to the next healthy device.
        """
        shapes = tuple(shapes)
        if not shapes:
            return ()
        if device_id is not None:
            # Fast path: every shape of a targeted batch shares one
            # candidate order, so the policy work is paid once, not per
            # shape.  A dead target falls through to per-shape dispatch.
            with self._lock:
                entry = self._entry(device_id)
                healthy = not entry.service.breaker_open
                if healthy:
                    self._c_targeted.inc(len(shapes))
                    # Fallback order mirrors _candidates: healthy
                    # devices first, open-breaker devices last (stable
                    # sort keeps insertion order within each group).
                    fallback = sorted(
                        (d for d in self._devices if d != device_id),
                        key=lambda d: self._devices[d].service.breaker_open,
                    )
            if healthy:
                order = (device_id, *fallback)
                indices = list(range(len(shapes)))
                targets: Dict[int, Tuple[Tuple[str, ...], Optional[str]]] = {
                    i: (order, device_id) for i in indices
                }
                decisions: Dict[int, RoutedDecision] = {}
                self._serve_partition(device_id, indices, shapes, targets, decisions)
                return tuple(decisions[i] for i in indices)
        # Partition: shape index -> ordered candidate devices.
        targets = self._batch_candidates(shapes, device_id, policy)
        partitions: Dict[str, List[int]] = {}
        for i in range(len(shapes)):
            partitions.setdefault(targets[i][0][0], []).append(i)

        decisions = {}
        for did, indices in partitions.items():
            self._serve_partition(did, indices, shapes, targets, decisions)
        return tuple(decisions[i] for i in range(len(shapes)))

    def _serve_partition(
        self,
        did: str,
        indices: List[int],
        shapes: Tuple[GemmShape, ...],
        targets: Dict[int, Tuple[Tuple[str, ...], Optional[str]]],
        decisions: Dict[int, RoutedDecision],
        *,
        tried: FrozenSet[str] = frozenset(),
    ) -> None:
        """Answer one device's partition, rerouting it on failure.

        ``tried`` carries the devices that already failed for these
        indices, so a multi-device outage walks each shape's candidate
        list at most once — the recursion depth is bounded by the fleet
        size and never revisits a device that failed earlier in the
        chain.
        """
        entry = self._devices[did]
        try:
            configs = entry.service.select_batch([shapes[i] for i in indices])
        except Exception:
            self._c_rerouted.inc(len(indices))
            tried = tried | {did}
            # Redistribute to each shape's next untried candidate.  The
            # whole redistribution runs inside one fleet.reroute span;
            # a multi-device outage nests its cascading reroutes as
            # child spans of the first.
            regrouped: Dict[str, List[int]] = {}
            for i in indices:
                candidates, _ = targets[i]
                remaining = [c for c in candidates if c not in tried]
                if not remaining:
                    raise
                regrouped.setdefault(remaining[0], []).append(i)
            with self._tracer.trace(
                "fleet.reroute",
                **{"from": did, "shapes": len(indices), "reason": "exception"},
            ):
                for next_did, next_indices in regrouped.items():
                    self._serve_partition(
                        next_did,
                        next_indices,
                        shapes,
                        targets,
                        decisions,
                        tried=tried,
                    )
            return
        with self._lock:
            entry.c_dispatched.inc(len(indices))
            entry.g_outstanding.inc(len(indices))
        for i, config in zip(indices, configs):
            _, targeted = targets[i]
            rerouted = bool(tried) or (targeted is not None and did != targeted)
            if rerouted and not tried:
                self._c_rerouted.inc()
            decisions[i] = RoutedDecision(
                device_id=did, config=config, rerouted=rerouted
            )

    def complete(
        self,
        device_id: str,
        n: int = 1,
        *,
        shape: Optional[GemmShape] = None,
        config: Optional[KernelConfig] = None,
        seconds: Optional[float] = None,
    ) -> None:
        """Mark ``n`` routed requests on a device as finished.

        Feeds the ``least-outstanding`` policy: callers report
        completion when the launched kernel retires, so the policy
        tracks true in-flight load rather than total dispatch counts.

        When ``shape``/``config``/``seconds`` describe the retired
        kernel and the device's service opted into ``auto_record``
        (:class:`~repro.serving.adaptive.AdaptiveSelectionService`),
        the observed latency is forwarded to the service's ``record``
        — serving loops then need no explicit feedback calls.
        """
        with self._lock:
            entry = self._entry(device_id)
            entry.g_outstanding.set(max(0.0, entry.g_outstanding.value - n))
            service = entry.service
        if (
            shape is not None
            and config is not None
            and seconds is not None
            and getattr(service, "auto_record", False)
        ):
            service.record(shape, config, seconds)

    # -- policy internals ----------------------------------------------------

    def _candidates(
        self,
        shape: GemmShape,
        device_id: Optional[str],
        policy: Optional[str],
    ) -> Tuple[Tuple[str, ...], Optional[str]]:
        """Ordered devices to try for one lookup, plus the targeted id.

        The first candidate is the dispatch choice; the rest are the
        cross-device fallback order.  Open-breaker devices sort last so
        they are only consulted when every healthy device has failed.
        """
        with self._lock:
            if not self._devices:
                raise RuntimeError("no devices routed; call add_device first")
            ids = list(self._devices)
            if device_id is not None:
                target = self._entry(device_id)
                self._c_targeted.inc()
                if not target.service.breaker_open:
                    order = [device_id]
                    order += [d for d in ids if d != device_id]
                    return tuple(order), device_id
                # Breaker open: fall over to the policy order, keeping
                # the dead device as the candidate of last resort.
                chosen_policy = policy or self._default_policy
            else:
                self._c_agnostic.inc()
                chosen_policy = policy or self._default_policy
            self._check_policy(chosen_policy)
            self._c_placements[chosen_policy].inc()
            healthy = [d for d in ids if not self._devices[d].service.breaker_open]
            open_ids = [d for d in ids if d not in healthy]
            pool = healthy if healthy else ids

            if chosen_policy == "round-robin":
                start = self._rr_cursor % len(pool)
                self._rr_cursor += 1
                ordered = pool[start:] + pool[:start]
            elif chosen_policy == "least-outstanding":
                ordered = sorted(pool, key=lambda d: self._devices[d].outstanding)
            else:  # perf-aware
                ordered = sorted(pool, key=lambda d: self._estimate_locked(d, shape))
            if healthy:
                ordered = ordered + open_ids
            if device_id is not None:
                # The dead target goes last; everything healthy first.
                ordered = [d for d in ordered if d != device_id] + [device_id]
                return tuple(ordered), device_id
            return tuple(ordered), None

    def _batch_candidates(
        self,
        shapes: Tuple[GemmShape, ...],
        device_id: Optional[str],
        policy: Optional[str],
    ) -> Dict[int, Tuple[Tuple[str, ...], Optional[str]]]:
        """Candidate orders for a whole batch under one lock acquisition.

        Same ordering rules as :meth:`_candidates`, with the batch-wide
        invariants (fleet membership, breaker health, outstanding
        counts) snapshotted once instead of per shape — breaker flips
        mid-batch are handled by the reroute path, not the planner.
        """
        with self._lock:
            if not self._devices:
                raise RuntimeError("no devices routed; call add_device first")
            ids = list(self._devices)
            if device_id is not None:
                self._entry(device_id)
                self._c_targeted.inc(len(shapes))
            else:
                self._c_agnostic.inc(len(shapes))
            chosen_policy = policy or self._default_policy
            self._check_policy(chosen_policy)
            self._c_placements[chosen_policy].inc(len(shapes))
            healthy = [d for d in ids if not self._devices[d].service.breaker_open]
            open_ids = [d for d in ids if d not in healthy]
            pool = healthy if healthy else ids
            outstanding = {d: self._devices[d].outstanding for d in pool}

            targets: Dict[int, Tuple[Tuple[str, ...], Optional[str]]] = {}
            pending: Dict[str, int] = {}
            for i, shape in enumerate(shapes):
                if chosen_policy == "round-robin":
                    start = self._rr_cursor % len(pool)
                    self._rr_cursor += 1
                    ordered = pool[start:] + pool[:start]
                elif chosen_policy == "least-outstanding":
                    ordered = sorted(
                        pool,
                        key=lambda d: outstanding[d] + pending.get(d, 0),
                    )
                else:  # perf-aware
                    ordered = sorted(
                        pool, key=lambda d: self._estimate_locked(d, shape)
                    )
                if healthy:
                    ordered = ordered + open_ids
                if device_id is not None:
                    ordered = [d for d in ordered if d != device_id]
                    ordered.append(device_id)
                targets[i] = (tuple(ordered), device_id)
                first = ordered[0]
                pending[first] = pending.get(first, 0) + 1
            return targets

    def estimate(self, device_id: str, shape: GemmShape) -> float:
        """Predicted best-case seconds for ``shape`` on one device.

        The minimum of the device's performance model over its shipped
        kernel library — the quantity the ``perf-aware`` policy ranks
        devices by.  Memoised per (device, shape).
        """
        with self._lock:
            self._entry(device_id)
            return self._estimate_locked(device_id, shape)

    def _estimate_locked(self, device_id: str, shape: GemmShape) -> float:
        key = (device_id, shape.as_tuple())
        cached = self._estimates.get(key)
        if cached is not None:
            return cached
        entry = self._devices[device_id]
        if entry.model is None or not entry.library:
            raise RuntimeError(
                f"device {device_id!r} has no performance model/library; "
                "perf-aware routing needs both (pass model= and library= "
                "to add_device)"
            )
        best = float("inf")
        for config in entry.library:
            try:
                seconds = entry.model.time_seconds(shape, config)
            except ValueError:
                continue  # config cannot launch on this device
            if seconds < best:
                best = seconds
        self._estimates[key] = best
        return best

    # -- observability -------------------------------------------------------

    def stats(self) -> FleetStats:
        """Aggregated fleet snapshot: a thin view over the obs metrics."""
        with self._lock:
            ids = tuple(self._devices)
            dispatched = {d: self._devices[d].dispatched for d in ids}
            outstanding = {d: self._devices[d].outstanding for d in ids}
            targeted = self._c_targeted.value
            agnostic = self._c_agnostic.value
            rerouted = self._c_rerouted.value
            policy_counts = {
                policy: counter.value
                for policy, counter in self._c_placements.items()
                if counter.value
            }
        # Per-device snapshots are taken outside the router lock: each
        # service has its own lock and stats() never calls back in.
        devices = {d: self._devices[d].service.stats() for d in ids}
        return FleetStats(
            devices=devices,
            dispatched=dispatched,
            outstanding=outstanding,
            targeted=targeted,
            agnostic=agnostic,
            rerouted=rerouted,
            policy_counts=policy_counts,
            default_policy=self._default_policy,
        )

    def reset_breaker(self, device_id: str) -> None:
        """Force one device's circuit closed (e.g. after redeploy)."""
        self.service(device_id).reset_breaker()

    def clear(self) -> None:
        """Zero router counters and estimate memo; services are kept.

        Only router-owned metrics reset; service metrics sharing the
        registry are untouched.
        """
        with self._lock:
            self._rr_cursor = 0
            self._c_targeted.reset()
            self._c_agnostic.reset()
            self._c_rerouted.reset()
            for counter in self._c_placements.values():
                counter.reset()
            self._estimates.clear()
            for entry in self._devices.values():
                entry.g_outstanding.reset()
                entry.c_dispatched.reset()

    def __repr__(self) -> str:
        with self._lock:
            ids = list(self._devices)
        return (
            f"FleetRouter({len(ids)} devices {ids}, "
            f"default_policy={self._default_policy!r})"
        )
