"""Online adaptive selection: a feedback wrapper over SelectionService.

:class:`AdaptiveSelectionService` keeps the static tree as the safe
prior and refines it online, modelled on Stream-K++'s Bloom-admitted
adaptive GEMM selection (PAPERS.md, arXiv:2408.11417):

* **Admission** — shape fingerprints pass through a
  :class:`~repro.ml.online.BloomAdmission` stack; only shapes seen at
  least ``admission_threshold`` times earn per-shape bandit state, so
  one-off shapes cost a few hash probes and nothing else.
* **Warm path** — an admitted shape's select is one dict read plus a
  GIL-atomic tick (no lock): serve the armed trial if one is pending,
  else the promoted override if one exists, else fall through to the
  wrapped :class:`~repro.serving.service.SelectionService` (its
  lock-free snapshot path).  All bandit mutation happens on the
  feedback path; warm-path ticks are folded into the exact
  ``adaptive.admission_hits`` counter whenever stats are read.
* **Feedback** — callers report observed latencies via :meth:`record`;
  the per-shape :class:`~repro.adaptive.bandit.ShapeBandit` updates its
  decayed estimators, arms trials, and promotes/demotes configs.

The wrapper exposes the full ``SelectionService`` surface used by
:class:`~repro.serving.router.FleetRouter` (``select``,
``select_batch``, ``breaker_open``, ``stats`` …), so adaptive services
drop into a fleet unchanged.  New ``adaptive.*`` metrics land in the
same obs registry the wrapped service uses.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from operator import attrgetter
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.adaptive.bandit import (
    AdaptiveConfig,
    BanditEvent,
    ShapeBandit,
)
from repro.kernels.params import KernelConfig
from repro.ml.online import BloomAdmission
from repro.obs.registry import MetricsRegistry
from repro.serving.service import SelectionService
from repro.serving.stats import ServiceStats
from repro.workloads.gemm import GemmShape

__all__ = ["AdaptiveSelectionService", "AdaptiveStats"]

_Key = Tuple[int, ...]


def _infer_candidates(service: SelectionService) -> Tuple[KernelConfig, ...]:
    """The pruned candidate set of the wrapped policy, if discoverable."""
    policy = service.policy
    for attr in ("library", "pruned"):
        holder = getattr(policy, attr, None)
        configs = getattr(holder, "configs", None)
        if configs:
            return tuple(configs)
    raise ValueError(
        "cannot infer a candidate config set from the wrapped policy "
        f"({type(policy).__name__}); pass candidates= explicitly"
    )


@dataclass(frozen=True)
class AdaptiveStats:
    """Counter totals for one adaptive service (exact, not sampled)."""

    admission_hits: int
    admission_misses: int
    tracked_shapes: int
    active_overrides: int
    trials: int
    promotions: int
    demotions: int
    feedback: int

    @property
    def requests(self) -> int:
        return self.admission_hits + self.admission_misses

    @property
    def admission_hit_rate(self) -> float:
        total = self.requests
        return self.admission_hits / total if total else 0.0

    def render(self) -> str:
        return (
            f"adaptive: {self.requests} requests "
            f"({self.admission_hit_rate:.1%} admitted), "
            f"{self.tracked_shapes} shapes tracked, "
            f"{self.active_overrides} overrides active\n"
            f"adaptive: {self.trials} trials, {self.promotions} promotions, "
            f"{self.demotions} demotions, {self.feedback} feedbacks"
        )


class AdaptiveSelectionService:
    """Bloom-admitted bandit layer around a :class:`SelectionService`."""

    def __init__(
        self,
        service: SelectionService,
        *,
        config: Optional[AdaptiveConfig] = None,
        candidates: Optional[Sequence[KernelConfig]] = None,
        registry: Optional[MetricsRegistry] = None,
        name: Optional[str] = None,
        event_log: int = 512,
        auto_record: bool = False,
    ) -> None:
        self._service = service
        # Opt-in: FleetRouter.complete() forwards observed latencies to
        # record() so serving loops need no explicit feedback calls.
        self._auto_record = bool(auto_record)
        self._config = config if config is not None else AdaptiveConfig()
        self._candidates = (
            tuple(candidates)
            if candidates is not None
            else _infer_candidates(service)
        )
        if not self._candidates:
            raise ValueError("candidates must be non-empty")
        self._registry = registry if registry is not None else service.registry
        self._name = name if name is not None else service.name
        labels = {"service": self._name} if self._name is not None else None
        reg = self._registry
        self._c_hits = reg.counter("adaptive.admission_hits", labels)
        self._c_misses = reg.counter("adaptive.admission_misses", labels)
        self._c_trials = reg.counter("adaptive.trials", labels)
        self._c_promotions = reg.counter("adaptive.promotions", labels)
        self._c_demotions = reg.counter("adaptive.demotions", labels)
        self._c_feedback = reg.counter("adaptive.feedback", labels)
        self._g_tracked = reg.gauge("adaptive.tracked_shapes", labels)
        self._g_overrides = reg.gauge("adaptive.active_overrides", labels)
        self._h_observed = reg.histogram("adaptive.observed_seconds", labels)
        self._states: Dict[_Key, ShapeBandit] = {}
        self._lock = threading.Lock()
        # Warm single selects count via a GIL-atomic itertools.count
        # tick (~5x cheaper than the lock-based obs counter); the ticks
        # are reconciled into ``_c_hits`` by :meth:`_flush_hits`.
        self._hit_ticks = itertools.count()
        self._hit_reads = 0
        self._hits_flushed = 0
        # Bound-method caches for the request-hot warm path: each one
        # trims an attribute hop per select.
        self._states_get = self._states.get
        self._tick = self._hit_ticks.__next__
        self._inner_select = service.select
        self._admission = BloomAdmission(
            threshold=self._config.admission_threshold,
            capacity=self._config.admission_capacity,
            error_rate=self._config.admission_error_rate,
            seed=self._config.seed,
        )
        self._events: Deque[BanditEvent] = deque(maxlen=event_log)

    # -- delegated SelectionService surface --------------------------------

    @property
    def service(self) -> SelectionService:
        return self._service

    @property
    def policy(self) -> object:
        return self._service.policy

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    @property
    def name(self) -> Optional[str]:
        return self._name

    @property
    def provenance(self) -> Optional[object]:
        return self._service.provenance

    @property
    def fallback(self) -> Optional[KernelConfig]:
        return self._service.fallback

    # The router probes every device's breaker on every request, so
    # this delegation is request-path hot.  A C-level attrgetter reads
    # the wrapped service's breaker flag directly: a lone bool read is
    # GIL-atomic, and a health probe needs no stronger ordering than
    # the lock-guarded property gives (either way the flag can flip the
    # instant after the probe).
    breaker_open = property(
        attrgetter("_service._breaker_open"),
        doc="Whether the wrapped service's circuit breaker is open.",
    )

    def stats(self) -> ServiceStats:
        return self._service.stats()

    def clear(self) -> None:
        self._service.clear()

    def reset_breaker(self) -> None:
        self._service.reset_breaker()

    # -- adaptive surface ---------------------------------------------------

    @property
    def config(self) -> AdaptiveConfig:
        return self._config

    @property
    def candidates(self) -> Tuple[KernelConfig, ...]:
        return self._candidates

    @property
    def auto_record(self) -> bool:
        """Whether router completions feed :meth:`record` implicitly."""
        return self._auto_record

    def select(self, shape: GemmShape) -> KernelConfig:
        state = self._states_get(shape.as_tuple())
        if state is None:
            return self._select_cold(shape, shape.as_tuple())
        # Warm admitted path: lock-free reads plus one GIL-atomic tick;
        # the (rare) armed-trial branch is outlined so the common case
        # stays as few bytecodes as possible.
        self._tick()
        if state.next_trial is not None:
            return self._select_trial(shape, state)
        current = state.current
        if current is not None:
            return current
        return self._inner_select(shape)

    def _select_trial(
        self, shape: GemmShape, state: ShapeBandit
    ) -> KernelConfig:
        challenger = state.take_trial()
        if challenger is not None:
            self._c_trials.inc()
            self._events.append(
                BanditEvent(
                    "trial", state.key, challenger, None, state.feedbacks
                )
            )
            return challenger
        current = state.current
        if current is not None:
            return current
        return self._service.select(shape)

    def select_batch(
        self, shapes: Sequence[GemmShape]
    ) -> Tuple[KernelConfig, ...]:
        items = tuple(shapes)
        if not items:
            return ()
        out: List[Optional[KernelConfig]] = [None] * len(items)
        pending: List[int] = []
        hits = 0
        misses = 0
        trials = 0
        states_get = self._states.get
        for i, shape in enumerate(items):
            key = shape.as_tuple()
            state = states_get(key)
            if state is None:
                misses += 1
                pending.append(i)
                continue
            hits += 1
            if state.next_trial is not None:
                # A trial serves exactly one request: taking the slot
                # clears ``next_trial``, so the first occurrence of the
                # shape in this batch consumes it and later occurrences
                # fall through to the normal warm path.
                challenger = state.take_trial()
                if challenger is not None:
                    trials += 1
                    self._events.append(
                        BanditEvent(
                            "trial", key, challenger, None, state.feedbacks
                        )
                    )
                    out[i] = challenger
                    continue
            current = state.current
            if current is not None:
                out[i] = current
            else:
                pending.append(i)
        if pending:
            resolved = self._service.select_batch(
                [items[i] for i in pending]
            )
            for i, config in zip(pending, resolved):
                out[i] = config
                key = items[i].as_tuple()
                if self._states.get(key) is None:
                    self._maybe_admit(key, config)
        if hits:
            self._c_hits.inc(hits)
        if misses:
            self._c_misses.inc(misses)
        if trials:
            self._c_trials.inc(trials)
        return tuple(out)  # type: ignore[arg-type]

    def record(
        self, shape: GemmShape, config: KernelConfig, seconds: float
    ) -> Tuple[BanditEvent, ...]:
        """Feed one observed latency for (shape, config) back in.

        Returns the promotion/demotion events the feedback triggered
        (empty for unadmitted shapes, which keep no bandit state).
        """
        self._c_feedback.inc()
        self._h_observed.observe(seconds)
        state = self._states.get(shape.as_tuple())
        if state is None:
            return ()
        events = state.record(config, seconds)
        for event in events:
            if event.kind == "promotion":
                self._c_promotions.inc()
            elif event.kind == "demotion":
                self._c_demotions.inc()
            self._events.append(event)
        if events:
            self._g_overrides.set(float(self._count_overrides()))
        return events

    def events(self) -> Tuple[BanditEvent, ...]:
        """The most recent bandit events (trials, promotions, demotions)."""
        return tuple(self._events)

    def tracked(self) -> Dict[_Key, ShapeBandit]:
        """A snapshot of the per-shape bandit states (shared objects)."""
        return dict(self._states)

    def adaptive_stats(self) -> AdaptiveStats:
        self._flush_hits()
        return AdaptiveStats(
            admission_hits=self._c_hits.value,
            admission_misses=self._c_misses.value,
            tracked_shapes=len(self._states),
            active_overrides=self._count_overrides(),
            trials=self._c_trials.value,
            promotions=self._c_promotions.value,
            demotions=self._c_demotions.value,
            feedback=self._c_feedback.value,
        )

    # -- internals ----------------------------------------------------------

    def _flush_hits(self) -> None:
        """Fold warm-path ticks into ``adaptive.admission_hits``.

        Reading :class:`itertools.count` consumes a tick, so reads are
        counted too and subtracted back out: the running total of warm
        single selects is ``raw - prior_reads``, exact at any quiescent
        point.  Batch hits go straight to the obs counter (one locked
        ``inc`` amortised over the whole batch), so only the delta of
        single-select ticks is flushed here.
        """
        with self._lock:
            raw = next(self._hit_ticks)
            total = raw - self._hit_reads
            self._hit_reads += 1
            delta = total - self._hits_flushed
            if delta:
                self._hits_flushed = total
                self._c_hits.inc(delta)

    def _select_cold(self, shape: GemmShape, key: _Key) -> KernelConfig:
        self._c_misses.inc()
        config = self._service.select(shape)
        self._maybe_admit(key, config)
        return config

    def _maybe_admit(self, key: _Key, base: KernelConfig) -> None:
        with self._lock:
            if key in self._states:
                return
            if self._admission.observe(*key):
                self._states[key] = ShapeBandit(
                    key, base, self._candidates, self._config
                )
                self._g_tracked.set(float(len(self._states)))

    def _count_overrides(self) -> int:
        return sum(
            1 for state in self._states.values() if state.current is not None
        )

    def __repr__(self) -> str:
        return (
            f"AdaptiveSelectionService(name={self._name!r}, "
            f"shapes={len(self._states)}, "
            f"candidates={len(self._candidates)})"
        )
