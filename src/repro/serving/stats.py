"""Observability snapshot types for the serving layer.

The counters quantify exactly what the paper cares about: how often a
selection decision is answered from memo (negligible overhead) versus
paid in full, and how long the decision path takes when it is paid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.obs.metrics import Histogram

__all__ = ["FleetStats", "LatencySummary", "ServiceStats"]


@dataclass(frozen=True)
class LatencySummary:
    """Summary of recent per-call selection latencies (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "LatencySummary":
        if len(samples) == 0:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(samples, dtype=np.float64)
        return LatencySummary(
            count=int(arr.size),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            maximum=float(arr.max()),
        )

    @staticmethod
    def from_histogram(histogram: "Histogram") -> "LatencySummary":
        """Thin view over a :class:`repro.obs.Histogram`.

        Percentiles are bucket-interpolated estimates (exact at the
        observed extrema); ``count`` covers every observation since the
        histogram was created or reset, not a sliding window.
        """
        count = histogram.count
        if count == 0:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0)
        return LatencySummary(
            count=count,
            mean=histogram.mean,
            p50=histogram.quantile(0.5),
            p95=histogram.quantile(0.95),
            maximum=histogram.maximum,
        )


@dataclass(frozen=True)
class ServiceStats:
    """Immutable snapshot of a :class:`SelectionService`'s counters.

    ``lookups`` counts individual shape queries (a batch of 100 shapes is
    100 lookups); ``cache_hits`` the lookups answered from the LRU memo.
    ``single_calls``/``batch_calls`` count API invocations.

    ``policy_errors`` counts exceptions raised by the wrapped policy,
    ``fallback_serves`` the queries answered with the last-known-good or
    configured fallback configuration instead, and ``breaker_trips`` /
    ``breaker_open`` describe the circuit breaker that stops hammering a
    persistently failing policy.
    """

    lookups: int
    cache_hits: int
    single_calls: int
    batch_calls: int
    max_batch_size: int
    mean_batch_size: float
    evictions: int
    cache_size: int
    capacity: int
    latency: LatencySummary
    policy_errors: int = 0
    fallback_serves: int = 0
    breaker_trips: int = 0
    breaker_open: bool = False
    #: Content address of the pipeline artifact the served policy came
    #: from (``stage:fingerprint[:12]``), when it has one.
    artifact_id: Optional[str] = None
    #: Provenance summary of that artifact (stage, parents, timings).
    provenance: Optional[Dict[str, Any]] = None

    @property
    def cache_misses(self) -> int:
        return self.lookups - self.cache_hits

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.cache_hits / self.lookups

    def render(self) -> str:
        """Human-readable report for CLI/log output."""
        lat = self.latency
        lines = [
            f"lookups          {self.lookups}",
            f"cache hits       {self.cache_hits} "
            f"({self.hit_rate * 100:.1f}% hit rate)",
            f"cache misses     {self.cache_misses}",
            f"calls            {self.single_calls} single, "
            f"{self.batch_calls} batch",
            f"batch size       max {self.max_batch_size}, "
            f"mean {self.mean_batch_size:.1f}",
            f"cache occupancy  {self.cache_size}/{self.capacity} "
            f"({self.evictions} evictions)",
            f"policy errors    {self.policy_errors} "
            f"({self.fallback_serves} fallback serves)",
            f"circuit breaker  {'OPEN' if self.breaker_open else 'closed'} "
            f"({self.breaker_trips} trips)",
            f"call latency     mean {lat.mean * 1e6:.1f}us, "
            f"p50 {lat.p50 * 1e6:.1f}us, p95 {lat.p95 * 1e6:.1f}us "
            f"over {lat.count} calls",
        ]
        if self.artifact_id is not None:
            lines.append(f"policy artifact  {self.artifact_id}")
            if self.provenance is not None:
                parents = self.provenance.get("parents", {})
                lineage = ", ".join(f"{name}:{fp[:12]}" for name, fp in parents.items())
                lines.append(f"provenance       {lineage or '(root)'}")
        return "\n".join(lines)


@dataclass(frozen=True)
class FleetStats:
    """Aggregated snapshot of a :class:`~repro.serving.router.FleetRouter`.

    ``devices`` holds each device's :class:`ServiceStats`; ``dispatched``
    / ``outstanding`` the router-side per-device load accounting.
    ``rerouted`` counts lookups answered by a device other than the one
    requested or first chosen (cross-device fallback), and
    ``policy_counts`` how often each dispatch policy placed a request.
    """

    devices: Dict[str, "ServiceStats"]
    dispatched: Dict[str, int]
    outstanding: Dict[str, int]
    targeted: int
    agnostic: int
    rerouted: int
    policy_counts: Dict[str, int]
    default_policy: str = "round-robin"

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    @property
    def total_lookups(self) -> int:
        return sum(s.lookups for s in self.devices.values())

    @property
    def total_cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.devices.values())

    @property
    def total_policy_errors(self) -> int:
        return sum(s.policy_errors for s in self.devices.values())

    @property
    def hit_rate(self) -> float:
        lookups = self.total_lookups
        return self.total_cache_hits / lookups if lookups else 0.0

    @property
    def open_breakers(self) -> tuple:
        """Device ids whose circuit breaker is currently open."""
        return tuple(did for did, s in sorted(self.devices.items()) if s.breaker_open)

    def render(self) -> str:
        """Human-readable fleet report for CLI/log output."""
        lines = [
            f"fleet            {self.n_devices} devices, "
            f"default policy {self.default_policy}",
            f"requests         {self.targeted} targeted, "
            f"{self.agnostic} device-agnostic, {self.rerouted} rerouted",
            f"lookups          {self.total_lookups} total "
            f"({self.hit_rate * 100:.1f}% memo hit rate)",
            f"policy errors    {self.total_policy_errors} fleet-wide",
        ]
        if self.policy_counts:
            placed = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.policy_counts.items())
            )
            lines.append(f"policy placements {placed}")
        if self.open_breakers:
            lines.append(f"open breakers    {', '.join(self.open_breakers)}")
        for did in sorted(self.devices):
            stats = self.devices[did]
            breaker = "OPEN" if stats.breaker_open else "closed"
            artifact = f"  <- {stats.artifact_id}" if stats.artifact_id else ""
            lines.append(
                f"  {did:16s} dispatched {self.dispatched.get(did, 0):8d}  "
                f"outstanding {self.outstanding.get(did, 0):6d}  "
                f"hits {stats.cache_hits:8d}/{stats.lookups:<8d} "
                f"errors {stats.policy_errors:5d}  breaker {breaker}"
                f"{artifact}"
            )
        return "\n".join(lines)
