"""The selection serving layer.

A :class:`SelectionService` fronts any fitted selection policy — a
trained :class:`~repro.core.selection.selector.Selector`, a
:class:`~repro.core.deploy.DeployedSelector`, or a
:class:`~repro.core.selection.dynamic.DynamicTrialSelector` — with the
machinery a production dispatch path needs:

* a thread-safe LRU memo cache keyed on ``shape.as_tuple()``, so a hot
  shape's decision costs a dict lookup rather than a model evaluation
  (the paper's "negligible overhead" requirement at traffic scale);
* batch and single-query APIs, routing misses through the policy's
  vectorized ``select_batch`` when it has one;
* observability counters (lookups, cache hits, batch sizes, per-call
  latency) exposed as an immutable :meth:`stats` snapshot.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Dict, Sequence, Tuple

from repro.kernels.params import KernelConfig
from repro.serving.stats import LatencySummary, ServiceStats
from repro.workloads.gemm import GemmShape

__all__ = ["SelectionService"]

_Key = Tuple[int, ...]


class SelectionService:
    """Thread-safe memoising front-end over a selection policy.

    ``policy`` is anything with ``select(shape) -> KernelConfig``; a
    vectorized ``select_batch(shapes)`` is used for batch misses when
    present.  ``capacity`` bounds the LRU memo; ``latency_window`` how
    many recent call latencies the :meth:`stats` summary covers.
    """

    def __init__(
        self,
        policy,
        *,
        capacity: int = 4096,
        latency_window: int = 2048,
    ):
        if not hasattr(policy, "select"):
            raise TypeError(
                f"policy {policy!r} has no select(shape) method"
            )
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if latency_window < 1:
            raise ValueError(
                f"latency_window must be >= 1, got {latency_window}"
            )
        self._policy = policy
        self._capacity = capacity
        self._cache: "OrderedDict[_Key, KernelConfig]" = OrderedDict()
        self._lock = threading.Lock()
        self._lookups = 0
        self._hits = 0
        self._single_calls = 0
        self._batch_calls = 0
        self._batch_queries = 0
        self._max_batch_size = 0
        self._evictions = 0
        self._latencies: "deque[float]" = deque(maxlen=latency_window)

    @property
    def policy(self):
        return self._policy

    @property
    def capacity(self) -> int:
        return self._capacity

    # -- serving APIs --------------------------------------------------------

    def select(self, shape: GemmShape) -> KernelConfig:
        """The configuration for one shape, memoised."""
        start = time.perf_counter()
        with self._lock:
            self._single_calls += 1
            self._lookups += 1
            key = shape.as_tuple()
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                self._cache.move_to_end(key)
                config = cached
            else:
                config = self._policy.select(shape)
                self._insert(key, config)
            self._latencies.append(time.perf_counter() - start)
        return config

    def select_batch(
        self, shapes: Sequence[GemmShape]
    ) -> Tuple[KernelConfig, ...]:
        """Configurations for many shapes in one call.

        Cache misses are deduplicated and resolved through the policy's
        ``select_batch`` (one classifier pass) when available, falling
        back to per-shape ``select``; hits and repeats never re-evaluate.
        """
        start = time.perf_counter()
        shapes = tuple(shapes)
        with self._lock:
            self._batch_calls += 1
            self._lookups += len(shapes)
            self._batch_queries += len(shapes)
            self._max_batch_size = max(self._max_batch_size, len(shapes))
            if not shapes:
                self._latencies.append(time.perf_counter() - start)
                return ()

            resolved: Dict[_Key, KernelConfig] = {}
            miss_shapes = []
            for shape in shapes:
                key = shape.as_tuple()
                if key in resolved:
                    continue
                cached = self._cache.get(key)
                if cached is not None:
                    self._hits += 1
                    self._cache.move_to_end(key)
                    resolved[key] = cached
                else:
                    resolved[key] = None  # placeholder keeps first-seen order
                    miss_shapes.append(shape)
            # Repeats of a key within the batch count as hits: only the
            # first occurrence of a missing shape pays the policy.
            self._hits += len(shapes) - len(resolved)

            if miss_shapes:
                batch_fn = getattr(self._policy, "select_batch", None)
                if batch_fn is not None:
                    configs = batch_fn(miss_shapes)
                else:
                    configs = [self._policy.select(s) for s in miss_shapes]
                for shape, config in zip(miss_shapes, configs):
                    key = shape.as_tuple()
                    resolved[key] = config
                    self._insert(key, config)

            out = tuple(resolved[shape.as_tuple()] for shape in shapes)
            self._latencies.append(time.perf_counter() - start)
        return out

    # -- observability -------------------------------------------------------

    def stats(self) -> ServiceStats:
        """Immutable snapshot of the service counters."""
        with self._lock:
            mean_batch = (
                self._batch_queries / self._batch_calls
                if self._batch_calls
                else 0.0
            )
            return ServiceStats(
                lookups=self._lookups,
                cache_hits=self._hits,
                single_calls=self._single_calls,
                batch_calls=self._batch_calls,
                max_batch_size=self._max_batch_size,
                mean_batch_size=mean_batch,
                evictions=self._evictions,
                cache_size=len(self._cache),
                capacity=self._capacity,
                latency=LatencySummary.from_samples(list(self._latencies)),
            )

    def clear(self) -> None:
        """Drop the memo cache and zero all counters."""
        with self._lock:
            self._cache.clear()
            self._lookups = 0
            self._hits = 0
            self._single_calls = 0
            self._batch_calls = 0
            self._batch_queries = 0
            self._max_batch_size = 0
            self._evictions = 0
            self._latencies.clear()

    # -- internals -----------------------------------------------------------

    def _insert(self, key: _Key, config: KernelConfig) -> None:
        self._cache[key] = config
        self._cache.move_to_end(key)
        while len(self._cache) > self._capacity:
            self._cache.popitem(last=False)
            self._evictions += 1

    def __repr__(self) -> str:
        return (
            f"SelectionService({self._policy!r}, "
            f"cache {len(self._cache)}/{self._capacity})"
        )
