"""The selection serving layer.

A :class:`SelectionService` fronts any fitted selection policy — a
trained :class:`~repro.core.selection.selector.Selector`, a
:class:`~repro.core.deploy.DeployedSelector`, or a
:class:`~repro.core.selection.dynamic.DynamicTrialSelector` — with the
machinery a production dispatch path needs:

* a thread-safe LRU memo cache keyed on ``shape.as_tuple()``, so a hot
  shape's decision costs a dict lookup rather than a model evaluation
  (the paper's "negligible overhead" requirement at traffic scale);
* batch and single-query APIs, routing misses through the policy's
  vectorized ``select_batch`` when it has one;
* observability counters (lookups, cache hits, batch sizes, per-call
  latency) exposed as an immutable :meth:`stats` snapshot;
* graceful degradation: policy exceptions are counted, answered with the
  last-known-good (or configured fallback) configuration, and a circuit
  breaker stops hammering a persistently failing policy, probing it
  periodically until it recovers.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Dict, Optional, Sequence, Tuple

from repro.kernels.params import KernelConfig
from repro.serving.stats import LatencySummary, ServiceStats
from repro.workloads.gemm import GemmShape

__all__ = ["SelectionService"]

_Key = Tuple[int, ...]


class SelectionService:
    """Thread-safe memoising front-end over a selection policy.

    ``policy`` is anything with ``select(shape) -> KernelConfig``; a
    vectorized ``select_batch(shapes)`` is used for batch misses when
    present.  ``capacity`` bounds the LRU memo; ``latency_window`` how
    many recent call latencies the :meth:`stats` summary covers.

    ``fallback`` is the configuration served when the policy raises and
    no last-known-good answer exists yet (a production deployment passes
    one of its bundled kernels — "never worse than pick any shipped
    kernel").  After ``breaker_threshold`` *consecutive* policy errors
    the circuit breaker opens: cache misses are answered degraded
    without touching the policy, except every
    ``breaker_probe_interval``-th miss, which probes it (half-open); one
    probe success closes the breaker.  With neither a fallback nor a
    last-known-good config available, the policy's exception propagates.

    ``provenance`` ties the served policy back to the pipeline artifact
    it was loaded from (a :class:`~repro.pipeline.artifact.Provenance`);
    :meth:`from_artifact` sets it automatically and :meth:`stats`
    reports the artifact id and lineage.
    """

    def __init__(
        self,
        policy,
        *,
        capacity: int = 4096,
        latency_window: int = 2048,
        fallback: Optional[KernelConfig] = None,
        breaker_threshold: int = 5,
        breaker_probe_interval: int = 8,
        provenance=None,
    ):
        if not hasattr(policy, "select"):
            raise TypeError(
                f"policy {policy!r} has no select(shape) method"
            )
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if latency_window < 1:
            raise ValueError(
                f"latency_window must be >= 1, got {latency_window}"
            )
        if breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        if breaker_probe_interval < 1:
            raise ValueError(
                "breaker_probe_interval must be >= 1, "
                f"got {breaker_probe_interval}"
            )
        self._policy = policy
        self._provenance = provenance
        self._capacity = capacity
        self._fallback = fallback
        self._breaker_threshold = breaker_threshold
        self._probe_interval = breaker_probe_interval
        self._cache: "OrderedDict[_Key, KernelConfig]" = OrderedDict()
        self._lock = threading.Lock()
        self._lookups = 0
        self._hits = 0
        self._single_calls = 0
        self._batch_calls = 0
        self._batch_queries = 0
        self._max_batch_size = 0
        self._evictions = 0
        self._latencies: "deque[float]" = deque(maxlen=latency_window)
        self._policy_errors = 0
        self._fallback_serves = 0
        self._breaker_trips = 0
        self._breaker_open = False
        self._consecutive_errors = 0
        self._open_misses = 0
        self._last_good: Optional[KernelConfig] = None

    @classmethod
    def from_artifact(cls, store, artifact_id: str, **kwargs) -> "SelectionService":
        """Serve a deployed selector loaded from a pipeline artifact.

        ``store`` is a :class:`~repro.pipeline.store.ArtifactStore`;
        ``artifact_id`` a fingerprint, unambiguous prefix, or
        ``stage:prefix`` display id.  The artifact's provenance is
        attached so :meth:`stats` can report where the policy came from.
        """
        try:
            artifact = store.resolve(artifact_id)
        except KeyError as exc:
            # resolve() raises on ambiguous prefixes; keep the artifact
            # id front and center instead of a bare store internal.
            raise KeyError(
                f"cannot resolve artifact {artifact_id!r}: {exc.args[0]}"
            ) from exc
        if artifact is None:
            raise KeyError(f"no artifact {artifact_id!r} in {store!r}")
        if not hasattr(artifact.value, "select"):
            raise TypeError(
                f"artifact {artifact.artifact_id} holds "
                f"{type(artifact.value).__name__} (stage "
                f"{artifact.provenance.stage!r}), not a selection policy"
            )
        return cls(artifact.value, provenance=artifact.provenance, **kwargs)

    @property
    def policy(self):
        return self._policy

    @property
    def provenance(self):
        return self._provenance

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def fallback(self) -> Optional[KernelConfig]:
        return self._fallback

    @property
    def breaker_open(self) -> bool:
        """Whether the circuit breaker is currently open.

        A cheap health probe for routing layers — unlike :meth:`stats`
        it does not build a full snapshot.
        """
        with self._lock:
            return self._breaker_open

    # -- serving APIs --------------------------------------------------------

    def select(self, shape: GemmShape) -> KernelConfig:
        """The configuration for one shape, memoised."""
        start = time.perf_counter()
        with self._lock:
            self._single_calls += 1
            self._lookups += 1
            key = shape.as_tuple()
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                self._cache.move_to_end(key)
                config = cached
            else:
                config = self._resolve_miss(shape)
            self._latencies.append(time.perf_counter() - start)
        return config

    def select_batch(
        self, shapes: Sequence[GemmShape]
    ) -> Tuple[KernelConfig, ...]:
        """Configurations for many shapes in one call.

        Cache misses are deduplicated and resolved through the policy's
        ``select_batch`` (one classifier pass) when available, falling
        back to per-shape ``select``; hits and repeats never re-evaluate.
        """
        start = time.perf_counter()
        shapes = tuple(shapes)
        with self._lock:
            self._batch_calls += 1
            self._lookups += len(shapes)
            self._batch_queries += len(shapes)
            self._max_batch_size = max(self._max_batch_size, len(shapes))
            if not shapes:
                self._latencies.append(time.perf_counter() - start)
                return ()

            resolved: Dict[_Key, KernelConfig] = {}
            miss_shapes = []
            for shape in shapes:
                key = shape.as_tuple()
                if key in resolved:
                    continue
                cached = self._cache.get(key)
                if cached is not None:
                    self._hits += 1
                    self._cache.move_to_end(key)
                    resolved[key] = cached
                else:
                    resolved[key] = None  # placeholder keeps first-seen order
                    miss_shapes.append(shape)
            # Repeats of a key within the batch count as hits: only the
            # first occurrence of a missing shape pays the policy.
            self._hits += len(shapes) - len(resolved)

            if miss_shapes:
                configs = None
                batch_fn = getattr(self._policy, "select_batch", None)
                if batch_fn is not None and not self._breaker_open:
                    try:
                        configs = tuple(batch_fn(miss_shapes))
                    except Exception:
                        # Degrade to the per-shape path, which applies
                        # the fallback/breaker logic per query.
                        self._note_policy_error()
                        configs = None
                    else:
                        for shape, config in zip(miss_shapes, configs):
                            self._note_policy_success(
                                shape.as_tuple(), config
                            )
                if configs is None:
                    configs = tuple(
                        self._resolve_miss(s) for s in miss_shapes
                    )
                for shape, config in zip(miss_shapes, configs):
                    resolved[shape.as_tuple()] = config

            out = tuple(resolved[shape.as_tuple()] for shape in shapes)
            self._latencies.append(time.perf_counter() - start)
        return out

    # -- observability -------------------------------------------------------

    def stats(self) -> ServiceStats:
        """Immutable snapshot of the service counters."""
        with self._lock:
            mean_batch = (
                self._batch_queries / self._batch_calls
                if self._batch_calls
                else 0.0
            )
            return ServiceStats(
                lookups=self._lookups,
                cache_hits=self._hits,
                single_calls=self._single_calls,
                batch_calls=self._batch_calls,
                max_batch_size=self._max_batch_size,
                mean_batch_size=mean_batch,
                evictions=self._evictions,
                cache_size=len(self._cache),
                capacity=self._capacity,
                latency=LatencySummary.from_samples(list(self._latencies)),
                policy_errors=self._policy_errors,
                fallback_serves=self._fallback_serves,
                breaker_trips=self._breaker_trips,
                breaker_open=self._breaker_open,
                artifact_id=(
                    None
                    if self._provenance is None
                    else self._provenance.artifact_id
                ),
                provenance=(
                    None
                    if self._provenance is None
                    else self._provenance.summary()
                ),
            )

    def clear(self) -> None:
        """Drop the memo cache and zero all counters."""
        with self._lock:
            self._cache.clear()
            self._lookups = 0
            self._hits = 0
            self._single_calls = 0
            self._batch_calls = 0
            self._batch_queries = 0
            self._max_batch_size = 0
            self._evictions = 0
            self._latencies.clear()
            self._policy_errors = 0
            self._fallback_serves = 0
            self._breaker_trips = 0
            self._breaker_open = False
            self._consecutive_errors = 0
            self._open_misses = 0
            self._last_good = None

    def reset_breaker(self) -> None:
        """Force the circuit closed (e.g. after redeploying the policy).

        Error and trip counters are kept; only the breaker state and the
        consecutive-error streak reset.
        """
        with self._lock:
            self._breaker_open = False
            self._consecutive_errors = 0
            self._open_misses = 0

    # -- internals -----------------------------------------------------------

    def _resolve_miss(self, shape: GemmShape) -> KernelConfig:
        """Answer one cache miss, applying breaker/fallback semantics.

        Caller holds the lock.  Degraded answers are *not* memoised: once
        the policy recovers, the next miss for the shape consults it.
        """
        if self._breaker_open:
            self._open_misses += 1
            if self._open_misses % self._probe_interval != 0:
                return self._serve_degraded(None)
            # Fall through: this miss probes the policy (half-open).
        try:
            config = self._policy.select(shape)
        except Exception as exc:
            self._note_policy_error()
            return self._serve_degraded(exc)
        self._note_policy_success(shape.as_tuple(), config)
        return config

    def _note_policy_success(self, key: _Key, config: KernelConfig) -> None:
        self._consecutive_errors = 0
        if self._breaker_open:
            self._breaker_open = False
            self._open_misses = 0
        self._last_good = config
        self._insert(key, config)

    def _note_policy_error(self) -> None:
        self._policy_errors += 1
        self._consecutive_errors += 1
        if (
            not self._breaker_open
            and self._consecutive_errors >= self._breaker_threshold
        ):
            self._breaker_open = True
            self._breaker_trips += 1
            self._open_misses = 0

    def _serve_degraded(self, exc: Optional[BaseException]) -> KernelConfig:
        config = self._last_good if self._last_good is not None else self._fallback
        if config is None:
            if exc is not None:
                raise exc
            raise RuntimeError(
                "selection circuit breaker is open and no fallback or "
                "last-known-good configuration is available"
            )
        self._fallback_serves += 1
        return config

    def _insert(self, key: _Key, config: KernelConfig) -> None:
        self._cache[key] = config
        self._cache.move_to_end(key)
        while len(self._cache) > self._capacity:
            self._cache.popitem(last=False)
            self._evictions += 1

    def __repr__(self) -> str:
        return (
            f"SelectionService({self._policy!r}, "
            f"cache {len(self._cache)}/{self._capacity})"
        )
