"""The selection serving layer.

A :class:`SelectionService` fronts any fitted selection policy — a
trained :class:`~repro.core.selection.selector.Selector`, a
:class:`~repro.core.deploy.DeployedSelector`, or a
:class:`~repro.core.selection.dynamic.DynamicTrialSelector` — with the
machinery a production dispatch path needs:

* a thread-safe LRU memo cache keyed on ``shape.as_tuple()``, fronted
  by a read-mostly snapshot dict so a *warm* hit costs one lock-free
  dict lookup rather than a model evaluation or even a lock acquisition
  (the paper's "negligible overhead" requirement at traffic scale);
* misses resolved *outside* the service lock: concurrent misses for the
  same shape coordinate through an in-flight table so the policy runs
  at most once per unique shape, and one slow policy call never
  serializes unrelated hits;
* batch and single-query APIs, routing misses through the policy's
  vectorized ``select_batch`` when it has one;
* observability through :mod:`repro.obs`: hit/miss/fallback/breaker
  counters and per-lookup latency histograms live in a
  :class:`~repro.obs.MetricsRegistry` (pass a shared one plus ``name``
  to aggregate a fleet into one exported snapshot), with the legacy
  :meth:`stats` snapshot kept as a thin view over those metrics;
* graceful degradation: policy exceptions are counted, answered with the
  last-known-good (or configured fallback) configuration, and a circuit
  breaker stops hammering a persistently failing policy, probing it
  periodically until it recovers.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from threading import Event, Lock
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.kernels.params import KernelConfig
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.registry import MetricsRegistry
from repro.serving.stats import LatencySummary, ServiceStats
from repro.workloads.gemm import GemmShape

__all__ = ["SelectionService"]

_Key = Tuple[int, ...]


class SelectionService:
    """Thread-safe memoising front-end over a selection policy.

    ``policy`` is anything with ``select(shape) -> KernelConfig``; a
    vectorized ``select_batch(shapes)`` is used for batch misses when
    present.  ``capacity`` bounds the LRU memo.

    Lock discipline: the service lock guards the LRU, the in-flight
    table and breaker state.  Warm hits read a plain snapshot dict
    without the lock (CPython dict reads are atomic; the single writer
    mutates it under the lock), so they do not refresh LRU recency —
    eviction order is approximate-LRU under the lock-free fast path.
    Policy evaluation always happens *outside* the lock with a
    double-checked insert, except the circuit breaker's half-open
    probes, which stay serialized to keep the probe schedule exact.

    ``registry`` is the :class:`~repro.obs.MetricsRegistry` the service
    writes its metrics into (a private one when omitted; pass
    :data:`~repro.obs.NULL_REGISTRY` to disable instrumentation, which
    also empties :meth:`stats`).  ``name`` labels every metric with
    ``service=<name>`` so many services — e.g. one per fleet device —
    can share a registry without colliding.  ``latency_window`` is kept
    for back-compat and validated, but latency is now histogram-backed
    and cumulative rather than windowed.

    ``fallback`` is the configuration served when the policy raises and
    no last-known-good answer exists yet (a production deployment passes
    one of its bundled kernels — "never worse than pick any shipped
    kernel").  After ``breaker_threshold`` *consecutive* policy errors
    the circuit breaker opens: cache misses are answered degraded
    without touching the policy, except every
    ``breaker_probe_interval``-th miss, which probes it (half-open); one
    probe success closes the breaker.  With neither a fallback nor a
    last-known-good config available, the policy's exception propagates.

    ``provenance`` ties the served policy back to the pipeline artifact
    it was loaded from (a :class:`~repro.pipeline.artifact.Provenance`);
    :meth:`from_artifact` sets it automatically and :meth:`stats`
    reports the artifact id and lineage.
    """

    def __init__(
        self,
        policy,
        *,
        capacity: int = 4096,
        latency_window: int = 2048,
        fallback: Optional[KernelConfig] = None,
        breaker_threshold: int = 5,
        breaker_probe_interval: int = 8,
        provenance=None,
        registry: Optional[MetricsRegistry] = None,
        name: Optional[str] = None,
    ):
        if not hasattr(policy, "select"):
            raise TypeError(f"policy {policy!r} has no select(shape) method")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if latency_window < 1:
            raise ValueError(f"latency_window must be >= 1, got {latency_window}")
        if breaker_threshold < 1:
            raise ValueError(f"breaker_threshold must be >= 1, got {breaker_threshold}")
        if breaker_probe_interval < 1:
            raise ValueError(
                f"breaker_probe_interval must be >= 1, got {breaker_probe_interval}"
            )
        self._policy = policy
        self._provenance = provenance
        self._capacity = capacity
        self._fallback = fallback
        self._breaker_threshold = breaker_threshold
        self._probe_interval = breaker_probe_interval
        self._cache: "OrderedDict[_Key, KernelConfig]" = OrderedDict()
        # Read-mostly mirror of the LRU's contents for the lock-free
        # fast path; mutated only under the lock, replaced on clear().
        self._snapshot: Dict[_Key, KernelConfig] = {}
        # Misses being resolved right now: key -> event the resolving
        # thread sets once the answer is cached (or degraded).
        self._inflight: Dict[_Key, Event] = {}
        self._lock = Lock()
        self._registry = registry if registry is not None else MetricsRegistry()
        self._name = name
        labels = {} if name is None else {"service": name}
        reg = self._registry
        self._c_lookups = reg.counter("serving.lookups", labels)
        self._c_hits = reg.counter("serving.cache_hits", labels)
        self._c_single = reg.counter("serving.calls", {**labels, "kind": "single"})
        self._c_batch = reg.counter("serving.calls", {**labels, "kind": "batch"})
        self._c_batch_queries = reg.counter("serving.batch_queries", labels)
        self._g_max_batch = reg.gauge("serving.max_batch_size", labels)
        self._g_cache_size = reg.gauge("serving.cache_size", labels)
        self._c_evictions = reg.counter("serving.evictions", labels)
        self._c_policy_errors = reg.counter("serving.policy_errors", labels)
        self._c_fallback_serves = reg.counter("serving.fallback_serves", labels)
        self._c_breaker_trips = reg.counter("serving.breaker_trips", labels)
        self._g_breaker_open = reg.gauge("serving.breaker_open", labels)
        self._h_call = reg.histogram("serving.call_seconds", labels)
        self._h_lookup = reg.histogram("serving.lookup_seconds", labels)
        # Breaker *state* (as opposed to its counters) stays plain: the
        # half-open probe logic reads it on the hot path.
        self._breaker_open = False
        self._consecutive_errors = 0
        self._open_misses = 0
        self._last_good: Optional[KernelConfig] = None

    @classmethod
    def from_artifact(cls, store, artifact_id: str, **kwargs) -> "SelectionService":
        """Serve a deployed selector loaded from a pipeline artifact.

        ``store`` is a :class:`~repro.pipeline.store.ArtifactStore`;
        ``artifact_id`` a fingerprint, unambiguous prefix, or
        ``stage:prefix`` display id.  The artifact's provenance is
        attached so :meth:`stats` can report where the policy came from.
        """
        try:
            artifact = store.resolve(artifact_id)
        except KeyError as exc:
            # resolve() raises on ambiguous prefixes; keep the artifact
            # id front and center instead of a bare store internal.
            raise KeyError(
                f"cannot resolve artifact {artifact_id!r}: {exc.args[0]}"
            ) from exc
        if artifact is None:
            raise KeyError(f"no artifact {artifact_id!r} in {store!r}")
        if not hasattr(artifact.value, "select"):
            raise TypeError(
                f"artifact {artifact.artifact_id} holds "
                f"{type(artifact.value).__name__} (stage "
                f"{artifact.provenance.stage!r}), not a selection policy"
            )
        return cls(artifact.value, provenance=artifact.provenance, **kwargs)

    @property
    def policy(self):
        return self._policy

    @property
    def provenance(self):
        return self._provenance

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def fallback(self) -> Optional[KernelConfig]:
        return self._fallback

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry this service writes into."""
        return self._registry

    @property
    def name(self) -> Optional[str]:
        """The ``service=...`` label on this service's metrics, if any."""
        return self._name

    @property
    def breaker_open(self) -> bool:
        """Whether the circuit breaker is currently open.

        A cheap health probe for routing layers — unlike :meth:`stats`
        it does not build a full snapshot.
        """
        with self._lock:
            return self._breaker_open

    # -- serving APIs --------------------------------------------------------

    def select(self, shape: GemmShape) -> KernelConfig:
        """The configuration for one shape, memoised.

        Warm hits are answered from the snapshot dict without taking
        the service lock; misses coordinate through the in-flight table
        (:meth:`_resolve_one`) so each unique shape consults the policy
        exactly once even under contention.
        """
        start = time.perf_counter()
        key = shape.as_tuple()
        config = self._snapshot.get(key)
        if config is None:
            config = self._resolve_one(shape, key)
        else:
            # Lock-free fast path.  The hit is counted before its
            # lookup so a concurrent clear() can only ever leave
            # hits <= lookups, never the reverse.
            self._c_hits.inc()
            self._c_single.inc()
            self._c_lookups.inc()
        duration = time.perf_counter() - start
        self._h_call.observe(duration)
        self._h_lookup.observe(duration)
        return config

    def select_batch(self, shapes: Sequence[GemmShape]) -> Tuple[KernelConfig, ...]:
        """Configurations for many shapes in one call.

        Cache misses are deduplicated and resolved through the policy's
        ``select_batch`` (one classifier pass) when available, falling
        back to per-shape ``select``; hits and repeats never re-evaluate.
        The policy runs outside the service lock; misses another thread
        is already resolving are awaited rather than recomputed.  The
        per-lookup latency histogram is weighted by the query count, so
        a 10k-query batch carries 10k observations, not one.
        """
        start = time.perf_counter()
        shapes = tuple(shapes)
        owned: List[Tuple[GemmShape, _Key, Event]] = []
        waiting: List[Tuple[GemmShape, _Key, Event]] = []
        with self._lock:
            self._c_batch.inc()
            self._c_lookups.inc(len(shapes))
            self._c_batch_queries.inc(len(shapes))
            self._g_max_batch.set_max(len(shapes))
            if not shapes:
                self._h_call.observe(time.perf_counter() - start)
                return ()

            resolved: Dict[_Key, KernelConfig] = {}
            seen: Set[_Key] = set()
            hits = 0
            for shape in shapes:
                key = shape.as_tuple()
                if key in seen:
                    continue
                seen.add(key)
                cached = self._cache.get(key)
                if cached is not None:
                    hits += 1
                    self._cache.move_to_end(key)
                    resolved[key] = cached
                elif self._breaker_open:
                    # Degraded regime: serve under the lock so only the
                    # breaker's own probe schedule touches the policy.
                    resolved[key] = self._resolve_miss(shape)
                else:
                    event = self._inflight.get(key)
                    if event is None:
                        event = Event()
                        self._inflight[key] = event
                        owned.append((shape, key, event))
                    else:
                        waiting.append((shape, key, event))
            # Repeats of a key within the batch count as hits: only the
            # first occurrence of a missing shape pays the policy.
            hits += len(shapes) - len(seen)
            self._c_hits.inc(hits)

        if owned:
            resolved.update(self._resolve_owned_batch(owned))
        for shape, key, event in waiting:
            resolved[key] = self._resolve_one(shape, key, event, count_call=False)

        out = tuple(resolved[shape.as_tuple()] for shape in shapes)
        duration = time.perf_counter() - start
        self._h_call.observe(duration)
        self._h_lookup.observe_n(duration / len(shapes), len(shapes))
        return out

    # -- observability -------------------------------------------------------

    def stats(self) -> ServiceStats:
        """Immutable snapshot of the service counters.

        A thin view assembled from the service's :mod:`repro.obs`
        metrics — the return shape predates the unified registry and is
        pinned by the compat tests.
        """
        with self._lock:
            self._g_cache_size.set(len(self._cache))
            batch_calls = self._c_batch.value
            batch_queries = self._c_batch_queries.value
            mean_batch = batch_queries / batch_calls if batch_calls else 0.0
            return ServiceStats(
                lookups=self._c_lookups.value,
                cache_hits=self._c_hits.value,
                single_calls=self._c_single.value,
                batch_calls=batch_calls,
                max_batch_size=int(self._g_max_batch.value),
                mean_batch_size=mean_batch,
                evictions=self._c_evictions.value,
                cache_size=len(self._cache),
                capacity=self._capacity,
                latency=LatencySummary.from_histogram(self._h_call),
                policy_errors=self._c_policy_errors.value,
                fallback_serves=self._c_fallback_serves.value,
                breaker_trips=self._c_breaker_trips.value,
                breaker_open=self._breaker_open,
                artifact_id=(
                    None if self._provenance is None else self._provenance.artifact_id
                ),
                provenance=(
                    None if self._provenance is None else self._provenance.summary()
                ),
            )

    def clear(self) -> None:
        """Drop the memo cache and zero this service's metrics.

        Only metrics owned by this service reset; other components
        sharing the registry are untouched.
        """
        with self._lock:
            self._cache.clear()
            # Swap, don't mutate: lock-free readers keep a coherent
            # (possibly stale) view of the old dict.  In-flight misses
            # stay registered; their owners will release them.
            self._snapshot = {}
            owned: Tuple[Union[Counter, Gauge, Histogram], ...] = (
                self._c_lookups,
                self._c_hits,
                self._c_single,
                self._c_batch,
                self._c_batch_queries,
                self._g_max_batch,
                self._g_cache_size,
                self._c_evictions,
                self._c_policy_errors,
                self._c_fallback_serves,
                self._c_breaker_trips,
                self._g_breaker_open,
                self._h_call,
                self._h_lookup,
            )
            for metric in owned:
                metric.reset()
            self._breaker_open = False
            self._consecutive_errors = 0
            self._open_misses = 0
            self._last_good = None

    def reset_breaker(self) -> None:
        """Force the circuit closed (e.g. after redeploying the policy).

        Error and trip counters are kept; only the breaker state and the
        consecutive-error streak reset.
        """
        with self._lock:
            self._breaker_open = False
            self._g_breaker_open.set(0.0)
            self._consecutive_errors = 0
            self._open_misses = 0

    # -- internals -----------------------------------------------------------

    def _resolve_one(
        self,
        shape: GemmShape,
        key: _Key,
        event: Optional[Event] = None,
        *,
        count_call: bool = True,
    ) -> KernelConfig:
        """Answer a miss for one key, coordinating concurrent resolvers.

        At most one thread per key consults the policy: the first to
        register the key in the in-flight table resolves it outside the
        lock while later arrivals wait on its event and re-check the
        cache (a degraded answer is not memoised, so the next waiter
        becomes the new resolver).  ``event`` is a known in-flight
        event to wait on before the first check; ``count_call`` is
        False when a surrounding batch call already counted this
        query's lookup.
        """
        while True:
            if event is not None:
                event.wait()
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    # Hit and lookup are counted in one critical section
                    # so a concurrent clear() cannot split them.
                    self._c_hits.inc()
                    if count_call:
                        self._c_single.inc()
                        self._c_lookups.inc()
                    self._cache.move_to_end(key)
                    return cached
                if self._breaker_open:
                    if count_call:
                        self._c_single.inc()
                        self._c_lookups.inc()
                    return self._resolve_miss(shape)
                event = self._inflight.get(key)
                if event is None:
                    event = Event()
                    self._inflight[key] = event
                    break
        return self._resolve_owned(shape, key, event, count_call=count_call)

    def _resolve_owned(
        self,
        shape: GemmShape,
        key: _Key,
        event: Event,
        *,
        count_call: bool = True,
    ) -> KernelConfig:
        """Consult the policy for a key this thread owns in-flight.

        The policy call runs outside the lock; result accounting and
        the double-checked cache insert happen under it.  The in-flight
        event is always released — whatever the policy raises — so
        waiters can never deadlock.
        """
        done = False
        try:
            config = self._policy.select(shape)
            done = True
        except Exception as exc:
            with self._lock:
                if count_call:
                    self._c_single.inc()
                    self._c_lookups.inc()
                self._note_policy_error()
                return self._serve_degraded(exc)
        finally:
            with self._lock:
                if self._inflight.get(key) is event:
                    del self._inflight[key]
                if done:
                    if count_call:
                        self._c_single.inc()
                        self._c_lookups.inc()
                    self._note_policy_success(key, config)
            event.set()
        return config

    def _resolve_owned_batch(
        self, owned: List[Tuple[GemmShape, _Key, Event]]
    ) -> Dict[_Key, KernelConfig]:
        """Resolve the batch misses this thread registered in-flight.

        The policy's vectorized ``select_batch`` is preferred (one
        classifier pass outside the lock); on error the per-shape path
        applies fallback/breaker logic per query.  A policy returning
        the wrong number of configurations is a contract violation and
        raises rather than silently mis-zipping answers onto shapes.
        """
        miss_shapes = [shape for shape, _, _ in owned]
        batch_fn = getattr(self._policy, "select_batch", None)
        if batch_fn is not None:
            try:
                configs = tuple(batch_fn(miss_shapes))
            except Exception:
                with self._lock:
                    self._note_policy_error()
            except BaseException:
                self._release(owned)
                raise
            else:
                if len(configs) != len(miss_shapes):
                    self._release(owned)
                    raise ValueError(
                        f"policy {type(self._policy).__name__}.select_batch "
                        f"returned {len(configs)} configs for "
                        f"{len(miss_shapes)} miss shapes"
                    )
                with self._lock:
                    for (shape, key, event), config in zip(owned, configs):
                        if self._inflight.get(key) is event:
                            del self._inflight[key]
                        self._note_policy_success(key, config)
                        event.set()
                return {
                    key: config
                    for (_, key, _), config in zip(owned, configs)
                }
        resolved: Dict[_Key, KernelConfig] = {}
        for index, (shape, key, event) in enumerate(owned):
            try:
                resolved[key] = self._resolve_owned(
                    shape, key, event, count_call=False
                )
            except BaseException:
                self._release(owned[index + 1 :])
                raise
        return resolved

    def _release(self, entries: List[Tuple[GemmShape, _Key, Event]]) -> None:
        """Drop in-flight registrations owned by this thread and wake waiters.

        Identity-checked so a double release can never pop a
        registration some other thread has since taken over.
        """
        if not entries:
            return
        with self._lock:
            for _, key, event in entries:
                if self._inflight.get(key) is event:
                    del self._inflight[key]
                event.set()

    def _resolve_miss(self, shape: GemmShape) -> KernelConfig:
        """Answer one cache miss, applying breaker/fallback semantics.

        Caller holds the lock.  Degraded answers are *not* memoised: once
        the policy recovers, the next miss for the shape consults it.
        """
        if self._breaker_open:
            self._open_misses += 1
            if self._open_misses % self._probe_interval != 0:
                return self._serve_degraded(None)
            # Fall through: this miss probes the policy (half-open).
        try:
            config = self._policy.select(shape)
        except Exception as exc:
            self._note_policy_error()
            return self._serve_degraded(exc)
        self._note_policy_success(shape.as_tuple(), config)
        return config

    def _note_policy_success(self, key: _Key, config: KernelConfig) -> None:
        self._consecutive_errors = 0
        if self._breaker_open:
            self._breaker_open = False
            self._g_breaker_open.set(0.0)
            self._open_misses = 0
        self._last_good = config
        self._insert(key, config)

    def _note_policy_error(self) -> None:
        self._c_policy_errors.inc()
        self._consecutive_errors += 1
        if (
            not self._breaker_open
            and self._consecutive_errors >= self._breaker_threshold
        ):
            self._breaker_open = True
            self._g_breaker_open.set(1.0)
            self._c_breaker_trips.inc()
            self._open_misses = 0

    def _serve_degraded(self, exc: Optional[BaseException]) -> KernelConfig:
        config = self._last_good if self._last_good is not None else self._fallback
        if config is None:
            if exc is not None:
                raise exc
            raise RuntimeError(
                "selection circuit breaker is open and no fallback or "
                "last-known-good configuration is available"
            )
        self._c_fallback_serves.inc()
        return config

    def _insert(self, key: _Key, config: KernelConfig) -> None:
        self._cache[key] = config
        self._cache.move_to_end(key)
        self._snapshot[key] = config
        evicted = 0
        while len(self._cache) > self._capacity:
            old_key, _ = self._cache.popitem(last=False)
            self._snapshot.pop(old_key, None)
            evicted += 1
        if evicted:
            self._c_evictions.inc(evicted)

    def __repr__(self) -> str:
        return (
            f"SelectionService({self._policy!r}, "
            f"cache {len(self._cache)}/{self._capacity})"
        )
