"""The selection serving layer.

A :class:`SelectionService` fronts any fitted selection policy — a
trained :class:`~repro.core.selection.selector.Selector`, a
:class:`~repro.core.deploy.DeployedSelector`, or a
:class:`~repro.core.selection.dynamic.DynamicTrialSelector` — with the
machinery a production dispatch path needs:

* a thread-safe LRU memo cache keyed on ``shape.as_tuple()``, so a hot
  shape's decision costs a dict lookup rather than a model evaluation
  (the paper's "negligible overhead" requirement at traffic scale);
* batch and single-query APIs, routing misses through the policy's
  vectorized ``select_batch`` when it has one;
* observability through :mod:`repro.obs`: hit/miss/fallback/breaker
  counters and per-lookup latency histograms live in a
  :class:`~repro.obs.MetricsRegistry` (pass a shared one plus ``name``
  to aggregate a fleet into one exported snapshot), with the legacy
  :meth:`stats` snapshot kept as a thin view over those metrics;
* graceful degradation: policy exceptions are counted, answered with the
  last-known-good (or configured fallback) configuration, and a circuit
  breaker stops hammering a persistently failing policy, probing it
  periodically until it recovers.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from threading import Lock
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.kernels.params import KernelConfig
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.registry import MetricsRegistry
from repro.serving.stats import LatencySummary, ServiceStats
from repro.workloads.gemm import GemmShape

__all__ = ["SelectionService"]

_Key = Tuple[int, ...]


class SelectionService:
    """Thread-safe memoising front-end over a selection policy.

    ``policy`` is anything with ``select(shape) -> KernelConfig``; a
    vectorized ``select_batch(shapes)`` is used for batch misses when
    present.  ``capacity`` bounds the LRU memo.

    ``registry`` is the :class:`~repro.obs.MetricsRegistry` the service
    writes its metrics into (a private one when omitted; pass
    :data:`~repro.obs.NULL_REGISTRY` to disable instrumentation, which
    also empties :meth:`stats`).  ``name`` labels every metric with
    ``service=<name>`` so many services — e.g. one per fleet device —
    can share a registry without colliding.  ``latency_window`` is kept
    for back-compat and validated, but latency is now histogram-backed
    and cumulative rather than windowed.

    ``fallback`` is the configuration served when the policy raises and
    no last-known-good answer exists yet (a production deployment passes
    one of its bundled kernels — "never worse than pick any shipped
    kernel").  After ``breaker_threshold`` *consecutive* policy errors
    the circuit breaker opens: cache misses are answered degraded
    without touching the policy, except every
    ``breaker_probe_interval``-th miss, which probes it (half-open); one
    probe success closes the breaker.  With neither a fallback nor a
    last-known-good config available, the policy's exception propagates.

    ``provenance`` ties the served policy back to the pipeline artifact
    it was loaded from (a :class:`~repro.pipeline.artifact.Provenance`);
    :meth:`from_artifact` sets it automatically and :meth:`stats`
    reports the artifact id and lineage.
    """

    def __init__(
        self,
        policy,
        *,
        capacity: int = 4096,
        latency_window: int = 2048,
        fallback: Optional[KernelConfig] = None,
        breaker_threshold: int = 5,
        breaker_probe_interval: int = 8,
        provenance=None,
        registry: Optional[MetricsRegistry] = None,
        name: Optional[str] = None,
    ):
        if not hasattr(policy, "select"):
            raise TypeError(f"policy {policy!r} has no select(shape) method")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if latency_window < 1:
            raise ValueError(f"latency_window must be >= 1, got {latency_window}")
        if breaker_threshold < 1:
            raise ValueError(f"breaker_threshold must be >= 1, got {breaker_threshold}")
        if breaker_probe_interval < 1:
            raise ValueError(
                f"breaker_probe_interval must be >= 1, got {breaker_probe_interval}"
            )
        self._policy = policy
        self._provenance = provenance
        self._capacity = capacity
        self._fallback = fallback
        self._breaker_threshold = breaker_threshold
        self._probe_interval = breaker_probe_interval
        self._cache: "OrderedDict[_Key, KernelConfig]" = OrderedDict()
        self._lock = Lock()
        self._registry = registry if registry is not None else MetricsRegistry()
        self._name = name
        labels = {} if name is None else {"service": name}
        reg = self._registry
        self._c_lookups = reg.counter("serving.lookups", labels)
        self._c_hits = reg.counter("serving.cache_hits", labels)
        self._c_single = reg.counter("serving.calls", {**labels, "kind": "single"})
        self._c_batch = reg.counter("serving.calls", {**labels, "kind": "batch"})
        self._c_batch_queries = reg.counter("serving.batch_queries", labels)
        self._g_max_batch = reg.gauge("serving.max_batch_size", labels)
        self._g_cache_size = reg.gauge("serving.cache_size", labels)
        self._c_evictions = reg.counter("serving.evictions", labels)
        self._c_policy_errors = reg.counter("serving.policy_errors", labels)
        self._c_fallback_serves = reg.counter("serving.fallback_serves", labels)
        self._c_breaker_trips = reg.counter("serving.breaker_trips", labels)
        self._g_breaker_open = reg.gauge("serving.breaker_open", labels)
        self._h_call = reg.histogram("serving.call_seconds", labels)
        self._h_lookup = reg.histogram("serving.lookup_seconds", labels)
        # Breaker *state* (as opposed to its counters) stays plain: the
        # half-open probe logic reads it on the hot path.
        self._breaker_open = False
        self._consecutive_errors = 0
        self._open_misses = 0
        self._last_good: Optional[KernelConfig] = None

    @classmethod
    def from_artifact(cls, store, artifact_id: str, **kwargs) -> "SelectionService":
        """Serve a deployed selector loaded from a pipeline artifact.

        ``store`` is a :class:`~repro.pipeline.store.ArtifactStore`;
        ``artifact_id`` a fingerprint, unambiguous prefix, or
        ``stage:prefix`` display id.  The artifact's provenance is
        attached so :meth:`stats` can report where the policy came from.
        """
        try:
            artifact = store.resolve(artifact_id)
        except KeyError as exc:
            # resolve() raises on ambiguous prefixes; keep the artifact
            # id front and center instead of a bare store internal.
            raise KeyError(
                f"cannot resolve artifact {artifact_id!r}: {exc.args[0]}"
            ) from exc
        if artifact is None:
            raise KeyError(f"no artifact {artifact_id!r} in {store!r}")
        if not hasattr(artifact.value, "select"):
            raise TypeError(
                f"artifact {artifact.artifact_id} holds "
                f"{type(artifact.value).__name__} (stage "
                f"{artifact.provenance.stage!r}), not a selection policy"
            )
        return cls(artifact.value, provenance=artifact.provenance, **kwargs)

    @property
    def policy(self):
        return self._policy

    @property
    def provenance(self):
        return self._provenance

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def fallback(self) -> Optional[KernelConfig]:
        return self._fallback

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry this service writes into."""
        return self._registry

    @property
    def name(self) -> Optional[str]:
        """The ``service=...`` label on this service's metrics, if any."""
        return self._name

    @property
    def breaker_open(self) -> bool:
        """Whether the circuit breaker is currently open.

        A cheap health probe for routing layers — unlike :meth:`stats`
        it does not build a full snapshot.
        """
        with self._lock:
            return self._breaker_open

    # -- serving APIs --------------------------------------------------------

    def select(self, shape: GemmShape) -> KernelConfig:
        """The configuration for one shape, memoised."""
        start = time.perf_counter()
        with self._lock:
            self._c_single.inc()
            self._c_lookups.inc()
            key = shape.as_tuple()
            cached = self._cache.get(key)
            if cached is not None:
                self._c_hits.inc()
                self._cache.move_to_end(key)
                config = cached
            else:
                config = self._resolve_miss(shape)
            duration = time.perf_counter() - start
            self._h_call.observe(duration)
            self._h_lookup.observe(duration)
        return config

    def select_batch(self, shapes: Sequence[GemmShape]) -> Tuple[KernelConfig, ...]:
        """Configurations for many shapes in one call.

        Cache misses are deduplicated and resolved through the policy's
        ``select_batch`` (one classifier pass) when available, falling
        back to per-shape ``select``; hits and repeats never re-evaluate.
        Metric increments are tallied locally and flushed once per call,
        so instrumentation cost does not scale with the batch size.
        """
        start = time.perf_counter()
        shapes = tuple(shapes)
        with self._lock:
            self._c_batch.inc()
            self._c_lookups.inc(len(shapes))
            self._c_batch_queries.inc(len(shapes))
            self._g_max_batch.set_max(len(shapes))
            if not shapes:
                self._h_call.observe(time.perf_counter() - start)
                return ()

            resolved: Dict[_Key, KernelConfig] = {}
            seen: Set[_Key] = set()
            miss_shapes: List[GemmShape] = []
            hits = 0
            for shape in shapes:
                key = shape.as_tuple()
                if key in seen:
                    continue
                seen.add(key)
                cached = self._cache.get(key)
                if cached is not None:
                    hits += 1
                    self._cache.move_to_end(key)
                    resolved[key] = cached
                else:
                    miss_shapes.append(shape)
            # Repeats of a key within the batch count as hits: only the
            # first occurrence of a missing shape pays the policy.
            hits += len(shapes) - len(seen)
            self._c_hits.inc(hits)

            if miss_shapes:
                configs: Optional[Tuple[KernelConfig, ...]] = None
                batch_fn = getattr(self._policy, "select_batch", None)
                if batch_fn is not None and not self._breaker_open:
                    try:
                        configs = tuple(batch_fn(miss_shapes))
                    except Exception:
                        # Degrade to the per-shape path, which applies
                        # the fallback/breaker logic per query.
                        self._note_policy_error()
                        configs = None
                    else:
                        for shape, config in zip(miss_shapes, configs):
                            self._note_policy_success(shape.as_tuple(), config)
                if configs is None:
                    configs = tuple(self._resolve_miss(s) for s in miss_shapes)
                for shape, config in zip(miss_shapes, configs):
                    resolved[shape.as_tuple()] = config

            out = tuple(resolved[shape.as_tuple()] for shape in shapes)
            duration = time.perf_counter() - start
            self._h_call.observe(duration)
            self._h_lookup.observe(duration / len(shapes))
        return out

    # -- observability -------------------------------------------------------

    def stats(self) -> ServiceStats:
        """Immutable snapshot of the service counters.

        A thin view assembled from the service's :mod:`repro.obs`
        metrics — the return shape predates the unified registry and is
        pinned by the compat tests.
        """
        with self._lock:
            self._g_cache_size.set(len(self._cache))
            batch_calls = self._c_batch.value
            batch_queries = self._c_batch_queries.value
            mean_batch = batch_queries / batch_calls if batch_calls else 0.0
            return ServiceStats(
                lookups=self._c_lookups.value,
                cache_hits=self._c_hits.value,
                single_calls=self._c_single.value,
                batch_calls=batch_calls,
                max_batch_size=int(self._g_max_batch.value),
                mean_batch_size=mean_batch,
                evictions=self._c_evictions.value,
                cache_size=len(self._cache),
                capacity=self._capacity,
                latency=LatencySummary.from_histogram(self._h_call),
                policy_errors=self._c_policy_errors.value,
                fallback_serves=self._c_fallback_serves.value,
                breaker_trips=self._c_breaker_trips.value,
                breaker_open=self._breaker_open,
                artifact_id=(
                    None if self._provenance is None else self._provenance.artifact_id
                ),
                provenance=(
                    None if self._provenance is None else self._provenance.summary()
                ),
            )

    def clear(self) -> None:
        """Drop the memo cache and zero this service's metrics.

        Only metrics owned by this service reset; other components
        sharing the registry are untouched.
        """
        with self._lock:
            self._cache.clear()
            owned: Tuple[Union[Counter, Gauge, Histogram], ...] = (
                self._c_lookups,
                self._c_hits,
                self._c_single,
                self._c_batch,
                self._c_batch_queries,
                self._g_max_batch,
                self._g_cache_size,
                self._c_evictions,
                self._c_policy_errors,
                self._c_fallback_serves,
                self._c_breaker_trips,
                self._g_breaker_open,
                self._h_call,
                self._h_lookup,
            )
            for metric in owned:
                metric.reset()
            self._breaker_open = False
            self._consecutive_errors = 0
            self._open_misses = 0
            self._last_good = None

    def reset_breaker(self) -> None:
        """Force the circuit closed (e.g. after redeploying the policy).

        Error and trip counters are kept; only the breaker state and the
        consecutive-error streak reset.
        """
        with self._lock:
            self._breaker_open = False
            self._g_breaker_open.set(0.0)
            self._consecutive_errors = 0
            self._open_misses = 0

    # -- internals -----------------------------------------------------------

    def _resolve_miss(self, shape: GemmShape) -> KernelConfig:
        """Answer one cache miss, applying breaker/fallback semantics.

        Caller holds the lock.  Degraded answers are *not* memoised: once
        the policy recovers, the next miss for the shape consults it.
        """
        if self._breaker_open:
            self._open_misses += 1
            if self._open_misses % self._probe_interval != 0:
                return self._serve_degraded(None)
            # Fall through: this miss probes the policy (half-open).
        try:
            config = self._policy.select(shape)
        except Exception as exc:
            self._note_policy_error()
            return self._serve_degraded(exc)
        self._note_policy_success(shape.as_tuple(), config)
        return config

    def _note_policy_success(self, key: _Key, config: KernelConfig) -> None:
        self._consecutive_errors = 0
        if self._breaker_open:
            self._breaker_open = False
            self._g_breaker_open.set(0.0)
            self._open_misses = 0
        self._last_good = config
        self._insert(key, config)

    def _note_policy_error(self) -> None:
        self._c_policy_errors.inc()
        self._consecutive_errors += 1
        if (
            not self._breaker_open
            and self._consecutive_errors >= self._breaker_threshold
        ):
            self._breaker_open = True
            self._g_breaker_open.set(1.0)
            self._c_breaker_trips.inc()
            self._open_misses = 0

    def _serve_degraded(self, exc: Optional[BaseException]) -> KernelConfig:
        config = self._last_good if self._last_good is not None else self._fallback
        if config is None:
            if exc is not None:
                raise exc
            raise RuntimeError(
                "selection circuit breaker is open and no fallback or "
                "last-known-good configuration is available"
            )
        self._c_fallback_serves.inc()
        return config

    def _insert(self, key: _Key, config: KernelConfig) -> None:
        self._cache[key] = config
        self._cache.move_to_end(key)
        evicted = 0
        while len(self._cache) > self._capacity:
            self._cache.popitem(last=False)
            evicted += 1
        if evicted:
            self._c_evictions.inc(evicted)

    def __repr__(self) -> str:
        return (
            f"SelectionService({self._policy!r}, "
            f"cache {len(self._cache)}/{self._capacity})"
        )
