"""Serving layer: memoised, observable selection at traffic scale.

:class:`SelectionService` fronts one device's selection policy;
:class:`FleetRouter` dispatches traffic across many of them with
round-robin / least-outstanding / perf-aware policies and cross-device
fallback when a device's circuit breaker opens.
"""

from repro.serving.adaptive import AdaptiveSelectionService, AdaptiveStats
from repro.serving.router import ROUTING_POLICIES, FleetRouter, RoutedDecision
from repro.serving.service import SelectionService
from repro.serving.stats import FleetStats, LatencySummary, ServiceStats

__all__ = [
    "AdaptiveSelectionService",
    "AdaptiveStats",
    "FleetRouter",
    "FleetStats",
    "LatencySummary",
    "ROUTING_POLICIES",
    "RoutedDecision",
    "SelectionService",
    "ServiceStats",
]
