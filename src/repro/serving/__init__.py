"""Serving layer: memoised, observable selection at traffic scale."""

from repro.serving.service import SelectionService
from repro.serving.stats import LatencySummary, ServiceStats

__all__ = ["LatencySummary", "SelectionService", "ServiceStats"]
