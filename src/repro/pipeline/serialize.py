"""Tagged-JSON serialization for pipeline payloads and parameters.

Artifacts and stage parameters must survive a disk round trip *exactly*
(the differential tests compare pipeline output bit-for-bit against the
direct path) and must hash identically across processes (fingerprints).
JSON alone cannot express tuples, NumPy arrays, dataclasses, or dicts
with non-string keys, so every container is encoded as a tagged object:

* ``{"__tuple__": [...]}`` — tuples (distinct from lists);
* ``{"__ndarray__": {"dtype": ..., "shape": ..., "data": ...}}`` — NumPy
  arrays (``tolist`` round-trips float64 exactly via shortest-repr);
* ``{"__npscalar__": {...}}`` — NumPy scalar types;
* ``{"__dict__": [[k, v], ...]}`` — dicts, preserving key types/order;
* ``{"__dataclass__": "module:QualName", "fields": {...}}`` — any
  dataclass importable at decode time (decode verifies the target really
  is a dataclass before instantiating it).

The encoding is pure data — no pickle, no executable payloads.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
import json
from typing import Any

import numpy as np

__all__ = ["from_jsonable", "to_jsonable", "dumps", "loads"]

_SCALARS = (bool, int, float, str, type(None))


def to_jsonable(obj: Any) -> Any:
    """Encode ``obj`` into the tagged-JSON representation."""
    if isinstance(obj, enum.Enum):
        cls = type(obj)
        return {
            "__enum__": f"{cls.__module__}:{cls.__qualname__}",
            "name": obj.name,
        }
    if isinstance(obj, _SCALARS):
        return obj
    if isinstance(obj, np.generic):
        return {
            "__npscalar__": {"dtype": str(obj.dtype), "value": obj.item()}
        }
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": {
                "dtype": str(obj.dtype),
                "shape": list(obj.shape),
                "data": obj.tolist(),
            }
        }
    if isinstance(obj, tuple):
        return {"__tuple__": [to_jsonable(x) for x in obj]}
    if isinstance(obj, list):
        return [to_jsonable(x) for x in obj]
    if isinstance(obj, dict):
        return {
            "__dict__": [[to_jsonable(k), to_jsonable(v)] for k, v in obj.items()]
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        fields = {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {
            "__dataclass__": f"{cls.__module__}:{cls.__qualname__}",
            "fields": fields,
        }
    raise TypeError(
        f"cannot serialize {type(obj).__name__} value {obj!r}; "
        "supported: scalars, tuples, lists, dicts, ndarrays, dataclasses"
    )


def _resolve_dataclass(spec: str):
    module_name, _, qualname = spec.partition(":")
    module = importlib.import_module(module_name)
    cls = module
    for part in qualname.split("."):
        cls = getattr(cls, part)
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{spec} is not a dataclass")
    return cls


def from_jsonable(obj: Any) -> Any:
    """Decode the tagged-JSON representation back into Python objects."""
    if isinstance(obj, _SCALARS):
        return obj
    if isinstance(obj, list):
        return [from_jsonable(x) for x in obj]
    if isinstance(obj, dict):
        if "__enum__" in obj:
            module_name, _, qualname = obj["__enum__"].partition(":")
            cls = importlib.import_module(module_name)
            for part in qualname.split("."):
                cls = getattr(cls, part)
            if not (isinstance(cls, type) and issubclass(cls, enum.Enum)):
                raise TypeError(f"{obj['__enum__']} is not an Enum")
            return cls[obj["name"]]
        if "__npscalar__" in obj:
            body = obj["__npscalar__"]
            return np.dtype(body["dtype"]).type(body["value"])
        if "__ndarray__" in obj:
            body = obj["__ndarray__"]
            return np.asarray(body["data"], dtype=body["dtype"]).reshape(
                body["shape"]
            )
        if "__tuple__" in obj:
            return tuple(from_jsonable(x) for x in obj["__tuple__"])
        if "__dict__" in obj:
            return {
                from_jsonable(k): from_jsonable(v) for k, v in obj["__dict__"]
            }
        if "__dataclass__" in obj:
            cls = _resolve_dataclass(obj["__dataclass__"])
            fields = {
                name: from_jsonable(value)
                for name, value in obj["fields"].items()
            }
            return cls(**fields)
    raise TypeError(f"malformed tagged-JSON node: {obj!r}")


def dumps(obj: Any, *, canonical: bool = False) -> str:
    """Serialize to a JSON string; ``canonical`` sorts keys (fingerprints)."""
    return json.dumps(
        to_jsonable(obj),
        sort_keys=canonical,
        separators=(",", ":") if canonical else None,
        indent=None if canonical else 2,
    )


def loads(text: str) -> Any:
    return from_jsonable(json.loads(text))
