"""Zero-copy mapped selector artifacts: one set of bytes, many processes.

The selector codec's ``.npz`` payload must be decompressed into fresh
arrays by every process that loads it.  The *mapped* layout removes that
copy: each tree array is written as its own uncompressed ``.npy`` file
so :func:`load_mapped_selector` can hand the deserialized
:class:`~repro.ml.tree.structure.Tree` views straight off the page
cache via ``np.load(mmap_mode="r")`` — N shard workers mapping the same
artifact share one physical copy of the tree.  For callers that want
the arrays in anonymous shared memory instead of a file mapping,
:class:`SharedSelectorBlock` packs them into one
:mod:`multiprocessing.shared_memory` segment.

Every layout is digest-protected: ``selector_meta.json`` records a
SHA-256 per array (over the raw element bytes, so the same hash guards
file- and shared-memory-backed copies) plus a combined digest over the
canonical metadata.  Loading verifies by default and raises
:class:`MappedIntegrityError` — never a crash deep inside the tree —
when any byte disagrees.  Like every pipeline codec this is pure data:
tagged JSON and ``.npy`` arrays, no pickle.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "ARRAY_FIELDS",
    "MAPPED_META_FILE",
    "MAPPED_SCHEMA",
    "MappedIntegrityError",
    "SharedBlockSpec",
    "SharedSelectorBlock",
    "load_mapped_selector",
    "mapped_digest",
    "read_mapped_meta",
    "rebuild_deployed",
    "selector_meta",
    "verify_mapped",
    "write_mapped_selector",
]

#: Tree arrays persisted by the mapped layout, in canonical order.
ARRAY_FIELDS: Tuple[str, ...] = (
    "feature",
    "threshold",
    "left",
    "right",
    "value",
    "impurity",
    "n_samples",
)

MAPPED_META_FILE = "selector_meta.json"
MAPPED_SCHEMA = "repro/mapped-selector/v1"

#: Metadata keys shared with the selector codec's ``selector.json``.
_CORE_KEYS = (
    "classifier",
    "pruned",
    "constant",
    "n_features_in",
    "classes",
    "feature_names",
    "has_tree",
)


class MappedIntegrityError(RuntimeError):
    """A mapped selector failed its digest / layout integrity check."""


def _array_sha256(array: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(array).tobytes()
    ).hexdigest()


def _meta_digest(meta: Dict[str, Any]) -> str:
    from repro.pipeline.serialize import dumps

    body = {key: meta[key] for key in meta if key != "digest"}
    return hashlib.sha256(dumps(body, canonical=True).encode()).hexdigest()


def selector_meta(deployed: Any) -> Dict[str, Any]:
    """The persistable metadata of a deployed selector (validated).

    Shared between the selector codec and the mapped layout; rejects
    estimator families without an array-only representation the same
    way the codec always has.
    """
    selector = deployed.selector
    constant = getattr(selector, "_constant", None)
    tree = getattr(selector.estimator, "tree_", None)
    feature_names = getattr(selector, "feature_names", None)
    meta: Dict[str, Any] = {
        "classifier": selector.name,
        "pruned": selector.pruned,
        "constant": constant,
        "n_features_in": getattr(selector.estimator, "n_features_in_", None),
        "classes": getattr(selector.estimator, "classes_", None),
        "feature_names": (
            None if feature_names is None else list(feature_names)
        ),
        "has_tree": tree is not None and constant is None,
    }
    if meta["has_tree"]:
        from repro.ml.tree.structure import Tree

        if not isinstance(tree, Tree) or selector.name != "DecisionTree":
            raise TypeError(
                "selector codec can only persist decision-tree or "
                f"constant selectors, not {selector.name!r}"
            )
    elif constant is None:
        raise TypeError(
            "selector codec requires a fitted decision-tree or "
            "constant selector"
        )
    return meta


def rebuild_deployed(meta: Dict[str, Any], tree: Optional[Any] = None) -> Any:
    """A :class:`~repro.core.deploy.DeployedSelector` from saved metadata.

    ``tree`` is the already-deserialized
    :class:`~repro.ml.tree.structure.Tree` (file-mapped, shared-memory
    or plain in-memory arrays — the selector does not care).
    """
    from repro.core.deploy import DeployedSelector
    from repro.core.selection.classifiers import make_selector
    from repro.kernels.registry import KernelLibrary

    pruned = meta["pruned"]
    selector = make_selector(meta["classifier"], pruned)
    selector._constant = (
        None if meta["constant"] is None else int(meta["constant"])
    )
    if meta["has_tree"] and tree is not None:
        selector.estimator.tree_ = tree
    if meta["classes"] is not None:
        selector.estimator.classes_ = np.asarray(meta["classes"])
    if meta["n_features_in"] is not None:
        selector.estimator.n_features_in_ = int(meta["n_features_in"])
    # Artifacts written before the feature vocabulary was recorded have
    # no such key; the selector then falls back to width inference.
    names = meta.get("feature_names")
    if names is not None:
        selector.feature_names = tuple(str(n) for n in names)
    selector._fitted = True
    return DeployedSelector(KernelLibrary(pruned.configs), selector)


def write_mapped_selector(deployed: Any, directory: Path) -> str:
    """Write the mapped layout under ``directory``; returns the digest.

    One uncompressed ``.npy`` per tree array plus
    :data:`MAPPED_META_FILE` carrying per-array SHA-256s and the
    combined digest.
    """
    from repro.pipeline.serialize import dumps

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta = selector_meta(deployed)
    meta["schema"] = MAPPED_SCHEMA
    arrays: Dict[str, Dict[str, Any]] = {}
    if meta["has_tree"]:
        tree = deployed.selector.estimator.tree_
        for field in ARRAY_FIELDS:
            array = np.ascontiguousarray(getattr(tree, field))
            filename = f"{field}.npy"
            np.save(directory / filename, array, allow_pickle=False)
            arrays[field] = {
                "file": filename,
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "sha256": _array_sha256(array),
            }
    meta["arrays"] = arrays
    digest = _meta_digest(meta)
    meta["digest"] = digest
    (directory / MAPPED_META_FILE).write_text(dumps(meta))
    return digest


def read_mapped_meta(directory: Path) -> Dict[str, Any]:
    """Parse :data:`MAPPED_META_FILE`; malformed metadata is an integrity
    error, not a crash."""
    from repro.pipeline.serialize import loads

    path = Path(directory) / MAPPED_META_FILE
    try:
        meta = loads(path.read_text())
    except FileNotFoundError:
        raise MappedIntegrityError(
            f"no mapped selector at {directory} (missing {MAPPED_META_FILE})"
        ) from None
    except Exception as exc:
        raise MappedIntegrityError(
            f"mapped selector metadata at {path} is unreadable: {exc}"
        ) from exc
    if not isinstance(meta, dict) or "digest" not in meta:
        raise MappedIntegrityError(
            f"mapped selector metadata at {path} has no digest"
        )
    return meta


def mapped_digest(directory: Path) -> str:
    """The digest recorded in a mapped layout's metadata."""
    return str(read_mapped_meta(directory)["digest"])


def _load_arrays(
    directory: Path, meta: Dict[str, Any], *, mmap: bool
) -> Dict[str, np.ndarray]:
    mode = "r" if mmap else None
    arrays: Dict[str, np.ndarray] = {}
    for field in ARRAY_FIELDS:
        entry = meta["arrays"].get(field)
        if entry is None:
            raise MappedIntegrityError(
                f"mapped selector at {directory} is missing the "
                f"{field!r} array entry"
            )
        path = directory / entry["file"]
        try:
            arrays[field] = np.load(path, mmap_mode=mode, allow_pickle=False)
        except FileNotFoundError:
            raise MappedIntegrityError(
                f"mapped selector array file {path} is missing"
            ) from None
        except Exception as exc:
            raise MappedIntegrityError(
                f"mapped selector array file {path} is unreadable: {exc}"
            ) from exc
    return arrays


def _verify_arrays(
    directory: Path, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
) -> None:
    for field, array in arrays.items():
        entry = meta["arrays"][field]
        if str(array.dtype) != entry["dtype"] or list(array.shape) != list(
            entry["shape"]
        ):
            raise MappedIntegrityError(
                f"mapped array {field!r} at {directory} has layout "
                f"{array.dtype}{tuple(array.shape)}, metadata says "
                f"{entry['dtype']}{tuple(entry['shape'])}"
            )
        if _array_sha256(array) != entry["sha256"]:
            raise MappedIntegrityError(
                f"mapped array {field!r} at {directory} fails its "
                "SHA-256 check (bytes on disk differ from the digest "
                "recorded at write time)"
            )


def verify_mapped(
    directory: Path, meta: Optional[Dict[str, Any]] = None
) -> str:
    """Full integrity check of a mapped layout; returns the digest.

    Verifies the combined metadata digest and every array's SHA-256.
    Raises :class:`MappedIntegrityError` on the first disagreement.
    """
    directory = Path(directory)
    if meta is None:
        meta = read_mapped_meta(directory)
    if _meta_digest(meta) != meta["digest"]:
        raise MappedIntegrityError(
            f"mapped selector metadata at {directory} fails its digest "
            "check (metadata was modified after write)"
        )
    if meta.get("has_tree"):
        arrays = _load_arrays(directory, meta, mmap=True)
        _verify_arrays(directory, meta, arrays)
    return str(meta["digest"])


def load_mapped_selector(
    directory: Path, *, mmap: bool = True, verify: bool = True
) -> Any:
    """A :class:`~repro.core.deploy.DeployedSelector` off mapped bytes.

    With ``mmap=True`` (the default) the tree arrays are read-only
    views over the page cache — concurrent loaders share one physical
    copy.  ``verify=True`` runs :func:`verify_mapped` first, so a
    corrupted artifact surfaces as :class:`MappedIntegrityError` at
    load time instead of wrong selections later.
    """
    directory = Path(directory)
    meta = read_mapped_meta(directory)
    tree = None
    if meta.get("has_tree"):
        from repro.ml.tree.structure import Tree

        arrays = _load_arrays(directory, meta, mmap=mmap)
        if verify:
            if _meta_digest(meta) != meta["digest"]:
                raise MappedIntegrityError(
                    f"mapped selector metadata at {directory} fails its "
                    "digest check (metadata was modified after write)"
                )
            _verify_arrays(directory, meta, arrays)
        tree = Tree(**arrays)
    elif verify:
        verify_mapped(directory, meta)
    return rebuild_deployed(meta, tree)


# -- shared-memory packing ----------------------------------------------------


@dataclass(frozen=True)
class SharedBlockSpec:
    """Everything needed to attach to a :class:`SharedSelectorBlock`.

    Pure primitives (safe to hand to another process over any
    transport): the shared-memory segment name, each array's placement
    inside it, the metadata JSON and the combined digest.
    """

    shm_name: str
    layout: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]
    meta_json: str
    digest: str


class SharedSelectorBlock:
    """Tree arrays packed into one shared-memory segment.

    :meth:`create` copies a mapped layout into a fresh
    :class:`multiprocessing.shared_memory.SharedMemory` block;
    :meth:`attach` opens it elsewhere and (by default) re-verifies each
    array's SHA-256 against the metadata, so shared-memory loads get
    the same integrity guarantee as file-mapped ones.  The creator must
    outlive attachers and call :meth:`unlink` when done.
    """

    def __init__(self, shm: Any, spec: SharedBlockSpec, *, owner: bool):
        self._shm = shm
        self.spec = spec
        self._owner = owner

    @classmethod
    def create(
        cls, directory: Path, *, name: Optional[str] = None
    ) -> "SharedSelectorBlock":
        from multiprocessing import shared_memory

        directory = Path(directory)
        meta = read_mapped_meta(directory)
        verify_mapped(directory, meta)
        has_tree = bool(meta.get("has_tree"))
        arrays = _load_arrays(directory, meta, mmap=True) if has_tree else {}
        layout = []
        offset = 0
        for field in ARRAY_FIELDS if has_tree else ():
            array = arrays[field]
            offset = (offset + 63) // 64 * 64  # 64-byte align each array
            layout.append(
                (field, str(array.dtype), tuple(array.shape), offset)
            )
            offset += array.nbytes
        shm = shared_memory.SharedMemory(
            create=True, size=max(offset, 1), name=name
        )
        for field, dtype, shape, start in layout:
            view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=start)
            view[...] = arrays[field]
        spec = SharedBlockSpec(
            shm_name=shm.name,
            layout=tuple(layout),
            meta_json=(directory / MAPPED_META_FILE).read_text(),
            digest=str(meta["digest"]),
        )
        return cls(shm, spec, owner=True)

    @classmethod
    def attach(
        cls, spec: SharedBlockSpec, *, verify: bool = True
    ) -> "SharedSelectorBlock":
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=spec.shm_name)
        block = cls(shm, spec, owner=False)
        if verify:
            from repro.pipeline.serialize import loads

            meta = loads(spec.meta_json)
            if _meta_digest(meta) != spec.digest:
                block.close()
                raise MappedIntegrityError(
                    f"shared selector block {spec.shm_name} metadata "
                    "fails its digest check"
                )
            for field, array in block.arrays().items():
                if _array_sha256(array) != meta["arrays"][field]["sha256"]:
                    block.close()
                    raise MappedIntegrityError(
                        f"shared selector block {spec.shm_name} array "
                        f"{field!r} fails its SHA-256 check"
                    )
        return block

    def arrays(self) -> Dict[str, np.ndarray]:
        """Read-only array views over the shared segment."""
        out: Dict[str, np.ndarray] = {}
        for field, dtype, shape, offset in self.spec.layout:
            view = np.ndarray(
                shape, dtype=dtype, buffer=self._shm.buf, offset=offset
            )
            view.flags.writeable = False
            out[field] = view
        return out

    def deployed(self) -> Any:
        """A DeployedSelector whose tree lives in the shared segment."""
        from repro.pipeline.serialize import loads
        from repro.ml.tree.structure import Tree

        meta = loads(self.spec.meta_json)
        tree = Tree(**self.arrays()) if meta.get("has_tree") else None
        return rebuild_deployed(meta, tree)

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        if self._owner:
            self._shm.unlink()

    def __enter__(self) -> "SharedSelectorBlock":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
        if self._owner:
            self.unlink()
