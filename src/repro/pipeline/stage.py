"""Stage and pipeline (DAG) definitions.

A :class:`Stage` is a pure function plus its declared inputs (upstream
stage names), payload codec, and a code-version string that participates
in the fingerprint — bump it when the stage's implementation changes in
a result-affecting way.  A :class:`Pipeline` is an ordered collection of
stages forming a DAG; it validates references, topologically sorts, and
computes the fingerprint of every stage for a given parameter set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Tuple

from repro.pipeline.fingerprint import fingerprint_stage

__all__ = ["Pipeline", "Stage"]

#: Stage function signature: (inputs, params, options) -> value.  Inputs
#: maps upstream stage names to their values; params is the stage's
#: fingerprinted parameter object; options carries non-fingerprinted
#: execution knobs (worker counts etc.) shared across the run.
StageFn = Callable[[Mapping[str, Any], Any, Mapping[str, Any]], Any]


@dataclass(frozen=True)
class Stage:
    """One node of the pipeline DAG.

    ``fn`` must be a module-level callable (picklable by reference) so
    independent stages can execute on a process pool.
    """

    name: str
    fn: StageFn
    inputs: Tuple[str, ...] = ()
    codec: str = "json"
    version: str = "1"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("stage name must be non-empty")
        if len(set(self.inputs)) != len(self.inputs):
            raise ValueError(f"stage {self.name!r} has duplicate inputs")


class Pipeline:
    """An ordered DAG of stages."""

    def __init__(self, stages: Mapping[str, Stage] = ()):
        self._stages: Dict[str, Stage] = {}
        for stage in dict(stages).values():
            self.add(stage)

    def add(self, stage: Stage) -> "Pipeline":
        if stage.name in self._stages:
            raise ValueError(f"duplicate stage {stage.name!r}")
        for parent in stage.inputs:
            if parent not in self._stages:
                raise ValueError(
                    f"stage {stage.name!r} depends on unknown stage "
                    f"{parent!r} (stages must be added parents-first)"
                )
        self._stages[stage.name] = stage
        return self

    def __contains__(self, name: str) -> bool:
        return name in self._stages

    def __getitem__(self, name: str) -> Stage:
        return self._stages[name]

    @property
    def stages(self) -> Tuple[Stage, ...]:
        return tuple(self._stages.values())

    def topo_order(self) -> List[Stage]:
        """Stages parents-first (insertion order already guarantees it)."""
        return list(self._stages.values())

    def levels(self) -> List[List[Stage]]:
        """Stages grouped by DAG depth; one group's members are mutually
        independent and may execute concurrently."""
        depth: Dict[str, int] = {}
        groups: Dict[int, List[Stage]] = {}
        for stage in self.topo_order():
            d = 1 + max((depth[p] for p in stage.inputs), default=-1)
            depth[stage.name] = d
            groups.setdefault(d, []).append(stage)
        return [groups[d] for d in sorted(groups)]

    def descendants(self, name: str) -> List[str]:
        """All stages downstream of ``name`` (transitively)."""
        reached = {name}
        out = []
        for stage in self.topo_order():
            if stage.name != name and any(p in reached for p in stage.inputs):
                reached.add(stage.name)
                out.append(stage.name)
        return out

    def fingerprints(
        self, params: Mapping[str, Any]
    ) -> Dict[str, str]:
        """Content address of every stage for one parameter assignment.

        ``params`` maps stage names to their parameter objects; stages
        absent from the mapping use ``None`` (parameter-free).
        """
        fps: Dict[str, str] = {}
        for stage in self.topo_order():
            fps[stage.name] = fingerprint_stage(
                stage.name,
                stage.version,
                params.get(stage.name),
                {p: fps[p] for p in stage.inputs},
            )
        return fps

    def __repr__(self) -> str:
        return f"Pipeline({' -> '.join(s.name for s in self._stages.values())})"
