"""Artifacts: stage outputs plus the provenance manifest describing them.

Every value a pipeline stage produces is wrapped in an :class:`Artifact`
carrying a :class:`Provenance` manifest — the full account of *how* the
value came to be: which stage, with which parameters and code version,
from which parent artifacts, how long it took, and what failed along the
way.  The manifest is what the store persists next to the payload and
what the serving layer reports for the selector it serves.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.pipeline.serialize import from_jsonable, to_jsonable

__all__ = ["Artifact", "Provenance"]


@dataclass(frozen=True)
class Provenance:
    """Manifest of one artifact: identity, lineage, and run account.

    ``fingerprint`` is the content address (see
    :mod:`repro.pipeline.fingerprint`); ``parents`` maps input names to
    the fingerprints of the artifacts consumed.  ``failures`` records
    per-stage failure summaries (e.g. benchmark cells abandoned as NaN)
    so a degraded artifact is never silently indistinguishable from a
    clean one.
    """

    stage: str
    fingerprint: str
    code_version: str
    params: Any
    parents: Dict[str, str]
    codec: str
    created_at: float = 0.0
    runtime_s: float = 0.0
    failures: Tuple[str, ...] = ()

    @property
    def artifact_id(self) -> str:
        """Short display form: ``stage:fingerprint[:12]``."""
        return f"{self.stage}:{self.fingerprint[:12]}"

    def summary(self) -> Dict[str, Any]:
        """Compact provenance view for stats/observability endpoints."""
        return {
            "stage": self.stage,
            "fingerprint": self.fingerprint,
            "code_version": self.code_version,
            "parents": dict(self.parents),
            "created_at": self.created_at,
            "runtime_s": self.runtime_s,
            "n_failures": len(self.failures),
        }

    def to_json(self) -> str:
        return json.dumps(
            {
                "stage": self.stage,
                "fingerprint": self.fingerprint,
                "code_version": self.code_version,
                "params": to_jsonable(self.params),
                "parents": dict(self.parents),
                "codec": self.codec,
                "created_at": self.created_at,
                "runtime_s": self.runtime_s,
                "failures": list(self.failures),
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "Provenance":
        body = json.loads(text)
        return cls(
            stage=body["stage"],
            fingerprint=body["fingerprint"],
            code_version=body["code_version"],
            params=from_jsonable(body["params"]),
            parents=dict(body["parents"]),
            codec=body["codec"],
            created_at=body.get("created_at", 0.0),
            runtime_s=body.get("runtime_s", 0.0),
            failures=tuple(body.get("failures", ())),
        )


@dataclass(frozen=True)
class Artifact:
    """A stage output value together with its provenance manifest."""

    value: Any = field(repr=False)
    provenance: Provenance

    @property
    def fingerprint(self) -> str:
        return self.provenance.fingerprint

    @property
    def artifact_id(self) -> str:
        return self.provenance.artifact_id

    def __repr__(self) -> str:
        return (
            f"Artifact({self.provenance.artifact_id}, "
            f"value={type(self.value).__name__})"
        )
