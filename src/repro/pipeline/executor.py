"""The pipeline executor: walk the DAG, reuse artifacts, run the rest.

For every stage the executor computes the content-address fingerprint,
probes the :class:`~repro.pipeline.store.ArtifactStore`, and either
loads the stored artifact (cache hit) or runs the stage function and
persists the result.  Independent stages at the same DAG depth execute
through :func:`~repro.bench.parallel.parallel_map`.

Every decision is emitted as a ``pipeline.stage`` span (tagged with the
stage name, fingerprint, and cache-hit outcome) nested under one
``pipeline.run`` root span on the executor's :mod:`repro.obs` tracer,
plus ``pipeline.stages{result=...}`` counters in its registry.
:class:`ExecutorStats` — the observable contract the incremental-
recomputation tests assert on — is assembled from those span records
rather than kept as separate bespoke accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.bench.parallel import parallel_map
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, SpanRecord, Tracer
from repro.pipeline.artifact import Artifact, Provenance
from repro.pipeline.stage import Pipeline, Stage
from repro.pipeline.store import ArtifactStore

__all__ = ["ExecutorStats", "PipelineExecutor", "PipelineRun", "StageExecution"]

#: Cap on per-stage failure entries copied into a manifest.
_MAX_MANIFEST_FAILURES = 100


@dataclass(frozen=True)
class StageExecution:
    """One stage's outcome in a run."""

    stage: str
    fingerprint: str
    cache_hit: bool
    runtime_s: float


@dataclass(frozen=True)
class ExecutorStats:
    """Per-stage cache hit/miss and runtime account of one run."""

    executions: Tuple[StageExecution, ...] = ()

    @property
    def n_executed(self) -> int:
        return sum(1 for e in self.executions if not e.cache_hit)

    @property
    def n_cached(self) -> int:
        return sum(1 for e in self.executions if e.cache_hit)

    @property
    def all_cached(self) -> bool:
        return bool(self.executions) and self.n_executed == 0

    @property
    def executed_stages(self) -> Tuple[str, ...]:
        return tuple(e.stage for e in self.executions if not e.cache_hit)

    @property
    def cached_stages(self) -> Tuple[str, ...]:
        return tuple(e.stage for e in self.executions if e.cache_hit)

    def for_stage(self, name: str) -> StageExecution:
        for execution in self.executions:
            if execution.stage == name:
                return execution
        raise KeyError(f"no execution recorded for stage {name!r}")

    def render(self) -> str:
        lines = [
            f"{'stage':10s} {'result':8s} {'runtime':>10s}  fingerprint"
        ]
        for e in self.executions:
            lines.append(
                f"{e.stage:10s} {'cached' if e.cache_hit else 'ran':8s} "
                f"{e.runtime_s * 1e3:8.1f}ms  {e.fingerprint[:12]}"
            )
        lines.append(
            f"{self.n_executed} executed, {self.n_cached} cached"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class PipelineRun:
    """Artifacts and stats of one executor invocation."""

    artifacts: Dict[str, Artifact] = field(default_factory=dict)
    stats: ExecutorStats = field(default_factory=ExecutorStats)

    def value(self, stage: str) -> Any:
        return self.artifacts[stage].value


def _collect_failures(value: Any) -> Tuple[str, ...]:
    """Failure summaries a stage value carries (e.g. a sweep's NaN cells)."""
    log = getattr(value, "failures", None)
    if log is None:
        return ()
    try:
        records = list(log)
    except TypeError:
        return ()
    out = []
    for record in records[:_MAX_MANIFEST_FAILURES]:
        kind = getattr(record, "kind", type(record).__name__)
        message = getattr(record, "message", str(record))
        fatal = getattr(record, "fatal", True)
        out.append(f"{kind}: {message} ({'fatal' if fatal else 'retried'})")
    if len(records) > _MAX_MANIFEST_FAILURES:
        out.append(f"... {len(records) - _MAX_MANIFEST_FAILURES} more")
    return tuple(out)


def _run_stage_job(job) -> Tuple[Any, float]:
    """Execute one stage; module-level so process pools can pickle it."""
    fn, inputs, params, options = job
    start = time.perf_counter()
    value = fn(inputs, params, options)
    return value, time.perf_counter() - start


class PipelineExecutor:
    """Runs a :class:`Pipeline` against an :class:`ArtifactStore`.

    ``max_workers`` bounds both stage-level parallelism (independent
    stages at one DAG depth) and is forwarded to stages via
    ``options["max_workers"]`` for their internal fan-out (e.g. the
    benchmark sweep).  Worker counts never enter fingerprints: results
    are bit-identical regardless of parallelism.

    ``registry`` receives ``pipeline.stages{result=ran|cached}``
    counters (a private :class:`~repro.obs.MetricsRegistry` when
    omitted); ``tracer`` receives the ``pipeline.run`` /
    ``pipeline.stage`` span trees (dropped by default).  Stage runtimes
    in the spans are worker-measured, so process-pool execution reports
    true stage cost, not round-trip overhead.
    """

    def __init__(
        self,
        store: ArtifactStore,
        *,
        max_workers: int = 1,
        options: Optional[Mapping[str, Any]] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._store = store
        self._max_workers = max_workers
        self._options: Dict[str, Any] = {"max_workers": max_workers}
        self._options.update(options or {})
        self._registry = registry if registry is not None else MetricsRegistry()
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._c_ran = self._registry.counter("pipeline.stages", {"result": "ran"})
        self._c_cached = self._registry.counter(
            "pipeline.stages", {"result": "cached"}
        )
        self._c_runs = self._registry.counter("pipeline.runs")

    @property
    def store(self) -> ArtifactStore:
        return self._store

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry the executor's counters live in."""
        return self._registry

    @property
    def tracer(self) -> Tracer:
        """The tracer receiving ``pipeline.run``/``pipeline.stage`` spans."""
        return self._tracer

    def _stage_span(
        self, stage: str, fingerprint: str, cache_hit: bool, runtime_s: float
    ) -> SpanRecord:
        """Emit one stage's span and bump the outcome counter."""
        (self._c_cached if cache_hit else self._c_ran).inc()
        return self._tracer.record(
            "pipeline.stage",
            runtime_s,
            tags={
                "stage": stage,
                "fingerprint": fingerprint,
                "cache_hit": cache_hit,
            },
        )

    def run(
        self,
        pipeline: Pipeline,
        params: Mapping[str, Any],
        *,
        force: bool = False,
    ) -> PipelineRun:
        """Execute the DAG; ``force`` re-runs every stage ignoring the cache."""
        unknown = set(params) - {s.name for s in pipeline.stages}
        if unknown:
            raise ValueError(f"params for unknown stages: {sorted(unknown)}")
        fingerprints = pipeline.fingerprints(params)
        artifacts: Dict[str, Artifact] = {}
        spans: List[SpanRecord] = []
        self._c_runs.inc()

        with self._tracer.trace(
            "pipeline.run", stages=len(pipeline.stages), force=force
        ):
            for level in pipeline.levels():
                hits: List[Stage] = []
                misses: List[Stage] = []
                for stage in level:
                    if not force and fingerprints[stage.name] in self._store:
                        hits.append(stage)
                    else:
                        misses.append(stage)

                for stage in hits:
                    start = time.perf_counter()
                    artifact = self._store.get(fingerprints[stage.name])
                    artifacts[stage.name] = artifact
                    spans.append(
                        self._stage_span(
                            stage.name,
                            fingerprints[stage.name],
                            True,
                            time.perf_counter() - start,
                        )
                    )

                if not misses:
                    continue
                jobs = [
                    (
                        stage.fn,
                        {p: artifacts[p].value for p in stage.inputs},
                        params.get(stage.name),
                        dict(self._options),
                    )
                    for stage in misses
                ]
                results = parallel_map(
                    _run_stage_job,
                    jobs,
                    max_workers=min(self._max_workers, len(jobs)),
                    min_parallel_items=2,
                )
                for stage, (value, runtime_s) in zip(misses, results):
                    provenance = Provenance(
                        stage=stage.name,
                        fingerprint=fingerprints[stage.name],
                        code_version=stage.version,
                        params=params.get(stage.name),
                        parents={
                            p: fingerprints[p] for p in stage.inputs
                        },
                        codec=stage.codec,
                        created_at=time.time(),
                        runtime_s=runtime_s,
                        failures=_collect_failures(value),
                    )
                    artifacts[stage.name] = self._store.put(value, provenance)
                    spans.append(
                        self._stage_span(
                            stage.name,
                            fingerprints[stage.name],
                            False,
                            runtime_s,
                        )
                    )

        # The stats snapshot is a thin view over the emitted spans.
        executions = [
            StageExecution(
                stage=str(span.tags["stage"]),
                fingerprint=str(span.tags["fingerprint"]),
                cache_hit=bool(span.tags["cache_hit"]),
                runtime_s=span.duration_s,
            )
            for span in spans
        ]
        order = {s.name: i for i, s in enumerate(pipeline.topo_order())}
        executions.sort(key=lambda e: order[e.stage])
        return PipelineRun(
            artifacts=artifacts, stats=ExecutorStats(tuple(executions))
        )
