"""Staged pipeline subsystem with a content-addressed artifact store.

The paper's deliverable is a chain of derived artifacts — benchmark
sweep -> normalized dataset -> pruned config set -> trained selector ->
deployable library.  This package makes that chain explicit:

* :class:`~repro.pipeline.stage.Stage` / :class:`~repro.pipeline.stage.Pipeline`
  — pure stage functions with declared inputs forming a DAG;
* :class:`~repro.pipeline.artifact.Artifact` — a stage output plus its
  :class:`~repro.pipeline.artifact.Provenance` manifest (fingerprint,
  params, parents, failures, timings);
* :class:`~repro.pipeline.store.ArtifactStore` — filesystem-backed,
  content-addressed storage with atomic writes and ``gc``;
* :class:`~repro.pipeline.executor.PipelineExecutor` — walks the DAG,
  reuses fingerprint-matching artifacts, runs independent stages in
  parallel, and reports :class:`~repro.pipeline.executor.ExecutorStats`;
* :mod:`~repro.pipeline.paper` — the reproduction's concrete DAG.

Incremental recomputation is the default: change ``split_seed`` and only
the split/prune/train/eval stages re-run; the 640-config sweep is a
cache hit.
"""

from repro.pipeline.artifact import Artifact, Provenance
from repro.pipeline.codecs import Codec, get_codec, register_codec
from repro.pipeline.executor import (
    ExecutorStats,
    PipelineExecutor,
    PipelineRun,
    StageExecution,
)
from repro.pipeline.fingerprint import fingerprint_stage, params_digest
from repro.pipeline.paper import (
    PaperPipelineConfig,
    paper_params,
    paper_pipeline,
    run_paper_pipeline,
)
from repro.pipeline.stage import Pipeline, Stage
from repro.pipeline.store import ArtifactPayloadError, ArtifactStore

__all__ = [
    "Artifact",
    "ArtifactPayloadError",
    "ArtifactStore",
    "Codec",
    "ExecutorStats",
    "PaperPipelineConfig",
    "Pipeline",
    "PipelineExecutor",
    "PipelineRun",
    "Provenance",
    "Stage",
    "StageExecution",
    "fingerprint_stage",
    "get_codec",
    "paper_params",
    "paper_pipeline",
    "params_digest",
    "register_codec",
    "run_paper_pipeline",
]
