"""The content-addressed artifact store.

Filesystem layout (one directory per artifact, keyed by fingerprint)::

    <root>/
      objects/
        <fingerprint>/
          manifest.json        # Provenance
          payload/             # codec-defined files (.npz / .json)

Writes are atomic: the payload and manifest are staged in a temporary
sibling directory and ``os.replace``-d into place, so readers never see a
half-written artifact and concurrent writers of the same fingerprint
converge on identical content.  This subsumes the single-file
``bench/cache.py`` cache: a sweep artifact *is* the old cache file, plus
identity and lineage.
"""

from __future__ import annotations

import os
import shutil
import time
import uuid
from pathlib import Path
from typing import Iterator, List, Optional, Set, Union

from repro.pipeline.artifact import Artifact, Provenance
from repro.pipeline.codecs import get_codec

__all__ = ["ArtifactPayloadError", "ArtifactStore"]


class ArtifactPayloadError(RuntimeError):
    """A stored artifact's payload failed to decode.

    Raised by :meth:`ArtifactStore.get` when the manifest is readable
    but the codec cannot reconstruct the payload (truncated/corrupted
    files, missing payload members) — a clear signal that the object
    directory is damaged, instead of a raw ``KeyError``/decode error
    surfacing from deep inside a codec.
    """

_MANIFEST = "manifest.json"
_PAYLOAD = "payload"
_TMP_PREFIX = "tmp-"


class ArtifactStore:
    """Filesystem-backed, content-addressed artifact storage."""

    def __init__(self, root: Union[str, Path]):
        self._root = Path(root)
        self._objects = self._root / "objects"
        self._objects.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    def _object_dir(self, fingerprint: str) -> Path:
        return self._objects / fingerprint

    # -- write ---------------------------------------------------------------

    def put(self, value, provenance: Provenance) -> Artifact:
        """Persist ``value`` under its provenance fingerprint, atomically."""
        final = self._object_dir(provenance.fingerprint)
        staging = self._objects / f"{_TMP_PREFIX}{uuid.uuid4().hex}"
        payload_dir = staging / _PAYLOAD
        payload_dir.mkdir(parents=True)
        try:
            get_codec(provenance.codec).save(value, payload_dir)
            (staging / _MANIFEST).write_text(provenance.to_json())
            if final.exists():
                # Same fingerprint => same content; keep the existing copy.
                shutil.rmtree(staging)
            else:
                os.replace(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return Artifact(value=value, provenance=provenance)

    # -- read ----------------------------------------------------------------

    def __contains__(self, fingerprint: str) -> bool:
        return (self._object_dir(fingerprint) / _MANIFEST).exists()

    def manifest(self, fingerprint: str) -> Provenance:
        path = self._object_dir(fingerprint) / _MANIFEST
        if not path.exists():
            raise KeyError(f"no artifact with fingerprint {fingerprint!r}")
        return Provenance.from_json(path.read_text())

    def get(self, fingerprint: str) -> Optional[Artifact]:
        """Load an artifact (manifest + payload), or None when absent."""
        if fingerprint not in self:
            return None
        provenance = self.manifest(fingerprint)
        payload_dir = self._object_dir(fingerprint) / _PAYLOAD
        try:
            value = get_codec(provenance.codec).load(payload_dir)
        except Exception as exc:
            raise ArtifactPayloadError(
                f"artifact {provenance.artifact_id} (codec "
                f"{provenance.codec!r}) has an unreadable payload under "
                f"{payload_dir}: {exc}"
            ) from exc
        return Artifact(value=value, provenance=provenance)

    def resolve(self, artifact_id: str) -> Optional[Artifact]:
        """Load by full fingerprint or unambiguous prefix/artifact id.

        Accepts ``<fingerprint>``, a fingerprint prefix, or the display
        form ``<stage>:<prefix>``.
        """
        prefix = artifact_id.rsplit(":", 1)[-1]
        matches = [
            fp for fp in self.fingerprints() if fp.startswith(prefix)
        ]
        if len(matches) > 1:
            raise KeyError(f"artifact id {artifact_id!r} is ambiguous")
        return self.get(matches[0]) if matches else None

    # -- enumeration / maintenance -------------------------------------------

    def fingerprints(self) -> Iterator[str]:
        for entry in sorted(self._objects.iterdir()):
            if entry.is_dir() and not entry.name.startswith(_TMP_PREFIX):
                if (entry / _MANIFEST).exists():
                    yield entry.name

    def ls(self) -> List[Provenance]:
        """All stored manifests, newest first."""
        manifests = [self.manifest(fp) for fp in self.fingerprints()]
        manifests.sort(key=lambda p: p.created_at, reverse=True)
        return manifests

    def latest(self, stage: str) -> Optional[Provenance]:
        """Most recently created artifact of one stage, if any."""
        for provenance in self.ls():
            if provenance.stage == stage:
                return provenance
        return None

    def size_bytes(self, fingerprint: str) -> int:
        total = 0
        for path in self._object_dir(fingerprint).rglob("*"):
            if path.is_file():
                total += path.stat().st_size
        return total

    def gc(
        self, keep: Set[str], *, max_tmp_age_s: float = 3600.0
    ) -> List[str]:
        """Delete every artifact whose fingerprint is not in ``keep``.

        Also sweeps stale staging directories older than
        ``max_tmp_age_s``.  Returns the fingerprints removed.
        """
        removed = []
        for fingerprint in list(self.fingerprints()):
            if fingerprint not in keep:
                shutil.rmtree(self._object_dir(fingerprint))
                removed.append(fingerprint)
        now = time.time()
        for entry in self._objects.iterdir():
            if entry.name.startswith(_TMP_PREFIX):
                if now - entry.stat().st_mtime > max_tmp_age_s:
                    shutil.rmtree(entry, ignore_errors=True)
        return removed

    def __repr__(self) -> str:
        n = sum(1 for _ in self.fingerprints())
        return f"ArtifactStore({str(self._root)!r}, {n} artifacts)"
