"""Content addressing for pipeline artifacts.

An artifact's fingerprint is a SHA-256 over everything that determines
its value: the stage name, the stage's declared code version, the stage
parameters (canonical tagged-JSON), and the fingerprints of every parent
artifact, in declared input order.  Two runs — in the same process or
different ones — that agree on all four produce the same fingerprint, so
the executor can reuse the stored payload instead of recomputing.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping, Sequence

from repro.pipeline.serialize import dumps

__all__ = ["fingerprint_stage", "params_digest"]


def params_digest(params: Any) -> str:
    """Canonical digest of a parameter object (dict or dataclass)."""
    return hashlib.sha256(
        dumps(params, canonical=True).encode("utf-8")
    ).hexdigest()


def fingerprint_stage(
    name: str,
    code_version: str,
    params: Any,
    parents: Mapping[str, str] | Sequence[str] = (),
) -> str:
    """The content address of one stage's output artifact.

    ``parents`` maps input names to parent fingerprints (or is an ordered
    sequence of fingerprints); order is significant and must match the
    stage's declared input order.
    """
    if isinstance(parents, Mapping):
        parent_fps = [f"{k}={v}" for k, v in parents.items()]
    else:
        parent_fps = list(parents)
    h = hashlib.sha256()
    for part in (name, code_version, params_digest(params), *parent_fps):
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()
