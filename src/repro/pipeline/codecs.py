"""Payload codecs: how each artifact type is laid out on disk.

A codec maps a stage's in-memory value to files inside the artifact's
payload directory and back.  Payloads are ``.npz`` (numeric tables) and
tagged JSON (everything else) — never pickle.  The manifest records which
codec wrote the payload, so the store can load any artifact without
knowing the pipeline that produced it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict

import numpy as np

from repro.pipeline.serialize import dumps, loads

__all__ = ["Codec", "get_codec", "register_codec"]


class Codec:
    """Base payload codec; subclasses define ``save``/``load``."""

    name: str = "codec"

    def save(self, value: Any, directory: Path) -> None:
        raise NotImplementedError

    def load(self, directory: Path) -> Any:
        raise NotImplementedError


_REGISTRY: Dict[str, Codec] = {}


def register_codec(codec: Codec) -> Codec:
    _REGISTRY[codec.name] = codec
    return codec


def get_codec(name: str) -> Codec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown payload codec {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


class JsonCodec(Codec):
    """Generic tagged-JSON payload: any dataclass/ndarray/tuple tree."""

    name = "json"

    def save(self, value: Any, directory: Path) -> None:
        (directory / "payload.json").write_text(dumps(value))

    def load(self, directory: Path) -> Any:
        return loads((directory / "payload.json").read_text())


class BenchResultCodec(Codec):
    """Raw benchmark sweep, in the ``bench.cache`` ``.npz`` format."""

    name = "bench-result"

    def save(self, value: Any, directory: Path) -> None:
        from repro.bench.cache import save_dataset

        save_dataset(value, directory / "sweep.npz")

    def load(self, directory: Path) -> Any:
        from repro.bench.cache import load_dataset

        return load_dataset(directory / "sweep.npz")


class DatasetCodec(Codec):
    """A :class:`~repro.core.dataset.PerformanceDataset` as ``.npz``."""

    name = "dataset"

    def save(self, value: Any, directory: Path) -> None:
        value.save(directory / "dataset.npz")

    def load(self, directory: Path) -> Any:
        from repro.core.dataset import PerformanceDataset

        return PerformanceDataset.load(directory / "dataset.npz")


class SplitCodec(Codec):
    """A train/test :class:`~repro.core.dataset.DatasetSplit` pair."""

    name = "split"

    def save(self, value: Any, directory: Path) -> None:
        value.train.save(directory / "train.npz")
        value.test.save(directory / "test.npz")

    def load(self, directory: Path) -> Any:
        from repro.core.dataset import DatasetSplit, PerformanceDataset

        return DatasetSplit(
            train=PerformanceDataset.load(directory / "train.npz"),
            test=PerformanceDataset.load(directory / "test.npz"),
        )


class SelectorCodec(Codec):
    """A deployed selector: tree arrays plus JSON metadata, two layouts.

    Supports the paper's deployable artefact — a decision-tree selector
    (or a degenerate constant selector) over a pruned set.  Other
    estimator families have no array-only representation here and are
    rejected at save time rather than silently mis-serialized.

    ``save`` writes the compact ``tree.npz`` + ``selector.json`` pair
    and, alongside it, the zero-copy ``mapped/`` layout
    (:mod:`repro.pipeline.mapped`): uncompressed per-array ``.npy``
    files with a SHA-256 digest, which shard workers map read-only so
    every process shares one physical copy of the tree.  ``load``
    prefers the mapped layout (digest-verified) and falls back to the
    ``.npz`` pair for artifacts written before it existed.
    """

    name = "selector"

    MAPPED_DIR = "mapped"

    def save(self, value: Any, directory: Path) -> None:
        from repro.pipeline.mapped import selector_meta, write_mapped_selector

        meta = selector_meta(value)  # validates the selector family
        if meta["has_tree"]:
            tree = value.selector.estimator.tree_
            np.savez_compressed(
                directory / "tree.npz",
                feature=tree.feature,
                threshold=tree.threshold,
                left=tree.left,
                right=tree.right,
                value=tree.value,
                impurity=tree.impurity,
                n_samples=tree.n_samples,
            )
        (directory / "selector.json").write_text(dumps(meta))
        write_mapped_selector(value, directory / self.MAPPED_DIR)

    def load(self, directory: Path) -> Any:
        from repro.pipeline.mapped import (
            MAPPED_META_FILE,
            load_mapped_selector,
            rebuild_deployed,
        )
        from repro.ml.tree.structure import Tree

        mapped_dir = directory / self.MAPPED_DIR
        if (mapped_dir / MAPPED_META_FILE).exists():
            return load_mapped_selector(mapped_dir)
        meta = loads((directory / "selector.json").read_text())
        tree = None
        if meta["has_tree"]:
            with np.load(directory / "tree.npz") as data:
                tree = Tree(
                    feature=data["feature"],
                    threshold=data["threshold"],
                    left=data["left"],
                    right=data["right"],
                    value=data["value"],
                    impurity=data["impurity"],
                    n_samples=data["n_samples"],
                )
        return rebuild_deployed(meta, tree)


class ProfileCodec(Codec):
    """A device profile (or bare model/device parameters) as tagged JSON.

    The payload for fleet ``profile`` stages and any provenance record
    carrying :class:`~repro.perfmodel.params.PerfModelParams` or a
    :class:`~repro.sycl.device.DeviceSpec` (e.g. the paper pipeline's
    sweep parameters).  Stricter than :class:`JsonCodec`: anything that
    is not one of those device-describing types is rejected at save
    time, so a mis-wired stage cannot silently persist an arbitrary
    object under the ``profile`` codec name.
    """

    name = "profile"

    @staticmethod
    def _check(value: Any) -> None:
        from repro.fleet.profile import DeviceProfile
        from repro.perfmodel.params import PerfModelParams
        from repro.sycl.device import DeviceSpec

        if not isinstance(value, (DeviceProfile, DeviceSpec, PerfModelParams)):
            raise TypeError(
                "profile codec persists DeviceProfile, DeviceSpec or "
                f"PerfModelParams values, not {type(value).__name__}"
            )

    def save(self, value: Any, directory: Path) -> None:
        self._check(value)
        (directory / "profile.json").write_text(dumps(value))

    def load(self, directory: Path) -> Any:
        value = loads((directory / "profile.json").read_text())
        self._check(value)
        return value


class PartialSweepCodec(Codec):
    """A budgeted :class:`~repro.onboard.sweep.PartialSweep`.

    The holey table reuses the dataset ``.npz`` layout (NaN cells are
    its native masking convention), the attempted cell indices are a
    plain ``.npy``, and the sampling provenance (sampler, seed, failure
    count) is tagged JSON.
    """

    name = "partial-sweep"

    def save(self, value: Any, directory: Path) -> None:
        from repro.onboard.sweep import PartialSweep

        if not isinstance(value, PartialSweep):
            raise TypeError(
                "partial-sweep codec persists PartialSweep values, "
                f"not {type(value).__name__}"
            )
        value.dataset.save(directory / "dataset.npz")
        np.save(directory / "cells.npy", value.cells)
        meta = {
            "sampler": value.sampler,
            "seed": value.seed,
            "failed": value.failed,
        }
        (directory / "sweep.json").write_text(dumps(meta))

    def load(self, directory: Path) -> Any:
        from repro.core.dataset import PerformanceDataset
        from repro.onboard.sweep import PartialSweep

        meta = loads((directory / "sweep.json").read_text())
        return PartialSweep(
            dataset=PerformanceDataset.load(directory / "dataset.npz"),
            cells=np.load(directory / "cells.npy"),
            sampler=meta["sampler"],
            seed=meta["seed"],
            failed=meta["failed"],
        )


class OnboardReportCodec(Codec):
    """An :class:`~repro.onboard.report.OnboardReport` as tagged JSON.

    Type-gated like :class:`ProfileCodec`: only the report dataclass may
    be persisted under this codec name.
    """

    name = "onboard-report"

    @staticmethod
    def _check(value: Any) -> None:
        from repro.onboard.report import OnboardReport

        if not isinstance(value, OnboardReport):
            raise TypeError(
                "onboard-report codec persists OnboardReport values, "
                f"not {type(value).__name__}"
            )

    def save(self, value: Any, directory: Path) -> None:
        self._check(value)
        (directory / "report.json").write_text(dumps(value))

    def load(self, directory: Path) -> Any:
        value = loads((directory / "report.json").read_text())
        self._check(value)
        return value


for _codec in (
    JsonCodec(),
    BenchResultCodec(),
    DatasetCodec(),
    SplitCodec(),
    SelectorCodec(),
    ProfileCodec(),
    PartialSweepCodec(),
    OnboardReportCodec(),
):
    register_codec(_codec)
