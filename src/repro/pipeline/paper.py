"""The paper's artifact chain as a staged pipeline.

Benchmark sweep -> normalized dataset -> train/test split -> pruned
config set -> trained selector -> evaluation, plus the figure/table
stages hanging off the shared dataset::

    sweep ──> dataset ──┬──> fig1
                        ├──> fig2
                        ├──> fig3
                        ├──> fig4      (split_seed in params)
                        ├──> table1    (split_seed in params)
                        └──> split ──> prune ──> train ──> eval

Changing ``split_seed`` re-fingerprints only split/prune/train/eval (and
the split-dependent figure stages) — the sweep artifact is reused, which
is the whole point: the 640-config sweep is the expensive stage and must
never re-run for a downstream parameter change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.bench.runner import RunnerConfig
from repro.core.dataset import (
    DEFAULT_NETWORKS,
    dataset_stage,
    split_stage,
    sweep_stage,
)
from repro.core.deploy import eval_stage, prune_stage, train_stage
from repro.experiments.fig1 import fig1_stage
from repro.experiments.fig2 import fig2_stage
from repro.experiments.fig3 import fig3_stage
from repro.experiments.fig4 import DEFAULT_BUDGETS as FIG4_BUDGETS
from repro.experiments.fig4 import fig4_stage
from repro.experiments.table1 import DEFAULT_BUDGETS as TABLE1_BUDGETS
from repro.experiments.table1 import table1_stage
from repro.perfmodel.params import PerfModelParams
from repro.pipeline.executor import PipelineExecutor, PipelineRun
from repro.pipeline.stage import Pipeline, Stage
from repro.pipeline.store import ArtifactStore
from repro.sycl.device import Device

__all__ = [
    "PaperPipelineConfig",
    "generate_dataset_stages",
    "paper_params",
    "paper_pipeline",
    "run_paper_pipeline",
]


@dataclass(frozen=True)
class PaperPipelineConfig:
    """Every fingerprinted knob of the paper pipeline in one place."""

    device_preset: str = "r9-nano"
    networks: Tuple[str, ...] = DEFAULT_NETWORKS
    #: Optional data-placement axis for the sweep (e.g. ("device",
    #: "host")).  ``None`` keeps the classic device-resident sweep and
    #: leaves historical sweep fingerprints untouched.
    placements: Optional[Tuple[str, ...]] = None
    runner: RunnerConfig = field(default_factory=RunnerConfig)
    model_params: Optional[PerfModelParams] = None
    test_size: float = 0.2
    split_seed: int = 0
    pruner: str = "decision tree"
    budget: int = 8
    classifier: str = "DecisionTree"
    random_state: int = 0
    fig4_budgets: Tuple[int, ...] = FIG4_BUDGETS
    table1_budgets: Tuple[int, ...] = TABLE1_BUDGETS


def _dataset_stages() -> Tuple[Stage, Stage]:
    """The shared sweep/dataset stage definitions.

    Built in one place so :func:`generate_dataset_stages` and the full
    pipeline fingerprint identically — a dataset generated standalone is
    a cache hit for a later full run.
    """
    return (
        Stage("sweep", sweep_stage, (), codec="bench-result", version="1"),
        Stage("dataset", dataset_stage, ("sweep",), codec="dataset", version="1"),
    )


def paper_pipeline() -> Pipeline:
    """The full reproduction DAG."""
    sweep, dataset = _dataset_stages()
    pipeline = Pipeline()
    pipeline.add(sweep)
    pipeline.add(dataset)
    pipeline.add(Stage("fig1", fig1_stage, ("dataset",)))
    pipeline.add(Stage("fig2", fig2_stage, ("dataset",)))
    pipeline.add(Stage("fig3", fig3_stage, ("dataset",)))
    pipeline.add(Stage("fig4", fig4_stage, ("dataset",)))
    pipeline.add(Stage("table1", table1_stage, ("dataset",)))
    pipeline.add(Stage("split", split_stage, ("dataset",), codec="split"))
    pipeline.add(Stage("prune", prune_stage, ("split",)))
    pipeline.add(Stage("train", train_stage, ("split", "prune"), codec="selector"))
    pipeline.add(Stage("eval", eval_stage, ("split", "train")))
    return pipeline


def _sweep_params(
    device: Device,
    networks: Tuple[str, ...],
    runner: RunnerConfig,
    model_params: Optional[PerfModelParams],
    placements: Optional[Tuple[str, ...]] = None,
) -> Dict[str, Any]:
    params: Dict[str, Any] = {
        "device_spec": device.spec,
        "networks": tuple(networks),
        "runner": runner,
        "model_params": model_params,
    }
    # Only present when requested: adding the key unconditionally would
    # re-fingerprint (and re-run) every existing device-resident sweep.
    if placements:
        params["placements"] = tuple(placements)
    return params


def paper_params(
    config: Optional[PaperPipelineConfig] = None,
) -> Dict[str, Any]:
    """Per-stage parameter assignment for :func:`paper_pipeline`."""
    config = config or PaperPipelineConfig()
    device = Device.from_preset(config.device_preset)
    return {
        "sweep": _sweep_params(
            device,
            config.networks,
            config.runner,
            config.model_params,
            config.placements,
        ),
        "split": {
            "test_size": config.test_size,
            "split_seed": config.split_seed,
        },
        "prune": {
            "pruner": config.pruner,
            "budget": config.budget,
            "random_state": config.random_state,
        },
        "train": {
            "classifier": config.classifier,
            "random_state": config.random_state,
        },
        "fig4": {
            "budgets": tuple(config.fig4_budgets),
            "test_size": config.test_size,
            "split_seed": config.split_seed,
            "random_state": config.random_state,
        },
        "table1": {
            "budgets": tuple(config.table1_budgets),
            "test_size": config.test_size,
            "split_seed": config.split_seed,
            "random_state": config.random_state,
        },
    }


def run_paper_pipeline(
    store: ArtifactStore,
    config: Optional[PaperPipelineConfig] = None,
    *,
    max_workers: int = 1,
    force: bool = False,
) -> PipelineRun:
    """Run (or incrementally resume) the whole reproduction."""
    executor = PipelineExecutor(store, max_workers=max_workers)
    return executor.run(paper_pipeline(), paper_params(config), force=force)


def generate_dataset_stages(
    store: ArtifactStore,
    *,
    device: Device,
    runner_config: RunnerConfig,
    model_params: Optional[PerfModelParams],
    networks: Tuple[str, ...],
    placements: Optional[Tuple[str, ...]] = None,
    max_workers: int = 1,
):
    """Sweep + dataset stages only (the ``generate_dataset`` fast path)."""
    sweep, dataset = _dataset_stages()
    pipeline = Pipeline()
    pipeline.add(sweep)
    pipeline.add(dataset)
    params = {
        "sweep": _sweep_params(
            device, networks, runner_config, model_params, placements
        )
    }
    executor = PipelineExecutor(store, max_workers=max_workers)
    return executor.run(pipeline, params).value("dataset")
