"""Deployment: the tuned library artefact.

:func:`tune` runs the whole pipeline — prune the configuration space on a
training dataset, fit a runtime selector — and returns a
:class:`DeployedSelector`: a kernel library bundling only the chosen
configurations plus the decision process choosing among them, exactly the
artefact the paper proposes shipping.  For decision-tree selectors the
nested-``if`` implementation can be exported as Python or C++ source.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import PerformanceDataset
from repro.core.pruning.base import PrunedSet, Pruner
from repro.core.pruning.decision_tree import DecisionTreePruner
from repro.core.pruning.evaluate import make_pruner
from repro.core.selection.classifiers import make_selector
from repro.core.selection.evaluate import evaluate_selector
from repro.core.selection.selector import Selector
from repro.kernels.matmul import matmul
from repro.kernels.params import KernelConfig
from repro.kernels.registry import KernelLibrary
from repro.ml.tree.export import export_cpp, export_python
from repro.sycl.kernel import Kernel
from repro.sycl.queue import Queue
from repro.workloads.gemm import GemmShape
from repro.workloads.sparse import SparseGemmShape

__all__ = [
    "CompiledSelector",
    "DeployedSelector",
    "eval_stage",
    "prune_stage",
    "train_stage",
    "tune",
]


class CompiledSelector:
    """The selection process compiled to a sub-microsecond hot path.

    Built by :meth:`DeployedSelector.compiled`: the fitted decision
    tree is compiled into a scalar descent callable (generated
    nested-``if`` source or branchless flat-array, see
    :mod:`repro.ml.tree.codegen`) and each leaf is pre-resolved to the
    :class:`~repro.kernels.params.KernelConfig` it selects, so one
    lookup is a function call plus a list index — no NumPy, no
    allocation, no locks.  Decisions are identical to the selector the
    tree was compiled from.
    """

    __slots__ = ("select", "_leaf_configs", "_dense", "compiled_tree")

    def __init__(self, compiled_tree, leaf_configs: Sequence[object]):
        self.compiled_tree = compiled_tree
        self._leaf_configs = tuple(leaf_configs)
        # Dense GEMM selectors take exactly (m, k, n, batch): read the
        # shape fields directly instead of materialising a feature
        # vector per lookup.
        self._dense = tuple(compiled_tree.feature_names) == GemmShape.FEATURE_NAMES
        # ``select`` is a slot holding a plain closure rather than a
        # method: callers skip bound-method creation and the descent
        # function and leaf table ride in the default args, which keeps
        # the per-lookup cost to one call, four loads and one index.
        if self._dense:

            def select(
                shape: GemmShape,
                _apply=compiled_tree.apply_one,
                _leaves=self._leaf_configs,
            ) -> KernelConfig:
                """The configuration for one shape, via the compiled descent."""
                return _leaves[_apply(shape.m, shape.k, shape.n, shape.batch)]

        else:

            def select(
                shape: GemmShape,
                _apply=compiled_tree.apply_one,
                _leaves=self._leaf_configs,
            ) -> KernelConfig:
                """The configuration for one shape, via the compiled descent."""
                return _leaves[_apply(*shape.features())]

        self.select = select

    @property
    def variant(self) -> str:
        """Which codegen variant answers lookups (``source``/``flat``)."""
        return self.compiled_tree.variant

    @property
    def source(self) -> Optional[str]:
        """The generated Python source (``source`` variant only)."""
        return self.compiled_tree.source

    def select_batch(
        self, shapes: Sequence[GemmShape]
    ) -> Tuple[KernelConfig, ...]:
        """Configurations for many shapes (a scalar loop).

        The compiled path is tuned for single lookups; large batches
        should prefer :meth:`DeployedSelector.select_batch`, which is
        vectorized.
        """
        select = self.select
        return tuple(select(shape) for shape in shapes)

    def __repr__(self) -> str:
        return (
            f"CompiledSelector({self.compiled_tree.variant!r}, "
            f"{len(self._leaf_configs)} leaf slots)"
        )


class DeployedSelector:
    """A kernel library plus its runtime selection process."""

    def __init__(self, library: KernelLibrary, selector: Selector):
        if tuple(library.configs) != tuple(selector.pruned.configs):
            raise ValueError(
                "library and selector must bundle the same configurations"
            )
        self.library = library
        self.selector = selector

    @classmethod
    def from_mapped(
        cls, directory, *, mmap: bool = True, verify: bool = True
    ) -> "DeployedSelector":
        """Load from a zero-copy mapped layout (no pickle, digest-checked).

        The inverse of :func:`repro.pipeline.mapped.write_mapped_selector`:
        tree arrays arrive as read-only ``np.load(mmap_mode="r")`` views
        over the page cache, so N processes loading the same directory
        share one physical copy of the tree.  With ``verify=True`` (the
        default) every array's SHA-256 and the combined metadata digest
        are checked first; corruption raises
        :class:`repro.pipeline.mapped.MappedIntegrityError` instead of
        serving wrong selections.
        """
        from repro.pipeline.mapped import load_mapped_selector

        deployed = load_mapped_selector(directory, mmap=mmap, verify=verify)
        assert isinstance(deployed, cls)
        return deployed

    def select(self, shape: GemmShape) -> KernelConfig:
        """The configuration the library will launch for ``shape``."""
        return self.selector.select(shape)

    def select_batch(
        self, shapes: Sequence[GemmShape]
    ) -> Tuple[KernelConfig, ...]:
        """Configurations for many shapes in one selector pass."""
        return self.selector.select_batch(shapes)

    def kernel_for(self, shape: GemmShape) -> Kernel:
        """A launchable kernel instance for ``shape``.

        The selected configuration is instantiated through the library's
        family dispatch, so vector-shaped problems get the GEMV kernel
        and ``batch > 1`` stacks the batched kernel.
        """
        return self.library.kernel(self.select(shape), shape=shape)

    def matmul(self, queue: Queue, a: np.ndarray, b: np.ndarray):
        """Run a GEMM end to end through the selection process.

        Returns ``(C, event, config)`` — result, profiling event, and the
        configuration that was chosen.
        """
        shape = GemmShape(m=a.shape[0], k=a.shape[1], n=b.shape[1])
        config = self.select(shape)
        result, event = matmul(queue, a, b, config)
        return result, event, config

    # -- code generation -----------------------------------------------------

    def _tree(self):
        from repro.ml.tree.structure import Tree

        estimator = self.selector.estimator
        tree = getattr(estimator, "tree_", None)
        # Note: KNeighborsClassifier also has a ``tree_`` (its KD-tree);
        # only a CART structure is exportable as nested ifs.
        if not isinstance(tree, Tree) or (
            getattr(self.selector, "_constant", None) is not None
        ):
            raise TypeError(
                "source export requires a fitted decision-tree selector"
            )
        return tree

    def _feature_names(self) -> Tuple[str, ...]:
        """Argument names for the generated dispatch function.

        The selector records its feature vocabulary at fit time; that is
        authoritative (sparse and placed shapes share a five-wide
        feature space, so width alone is ambiguous).  Selectors rebuilt
        from artifacts written before the vocabulary was recorded fall
        back to the historical width heuristic.
        """
        recorded = getattr(self.selector, "feature_names", None)
        if recorded:
            return tuple(recorded)
        width = getattr(self.selector.estimator, "n_features_in_", None)
        if width == SparseGemmShape.N_FEATURES:
            return SparseGemmShape.FEATURE_NAMES
        return GemmShape.FEATURE_NAMES

    def _config_tokens(self) -> Tuple[str, ...]:
        # Leaf classes are positions into the pruned set; map through the
        # selector's training classes to configuration names.
        classes = self.selector.estimator.classes_
        return tuple(
            self.selector.pruned.configs[int(c)].short_name() for c in classes
        )

    def export_python(self, *, function_name: str = "select_kernel") -> str:
        """The selection process as a standalone Python function."""
        return export_python(
            self._tree(),
            function_name=function_name,
            feature_names=list(self._feature_names()),
            class_names=self._config_tokens(),
        )

    def export_cpp(self, *, function_name: str = "select_kernel") -> str:
        """The selection process as nested C++ ifs (library dispatch)."""
        tokens = tuple(f'"{t}"' for t in self._config_tokens())
        return export_cpp(
            self._tree(),
            function_name=function_name,
            feature_names=list(self._feature_names()),
            class_names=tokens,
            return_type="const char*",
        )

    def compiled(self, *, variant: str = "source") -> CompiledSelector:
        """This selector compiled for the sub-microsecond hot path.

        The fitted tree is compiled via
        :func:`repro.ml.tree.codegen.compile_tree` (``variant`` is
        ``"source"`` for generated nested-``if`` Python or ``"flat"``
        for the branchless flat-array descent) and every leaf is
        pre-resolved to its :class:`~repro.kernels.params.KernelConfig`.
        The returned :class:`CompiledSelector` makes decisions identical
        to :meth:`select`, roughly an order of magnitude faster.

        Requires a fitted decision-tree selector (like the source
        exporters); a degenerate constant selector compiles to a
        single-leaf tree.
        """
        from repro.ml.tree.codegen import compile_tree
        from repro.ml.tree.structure import LEAF, Tree as _Tree

        configs = self.selector.pruned.configs
        names = self._feature_names()
        constant = getattr(self.selector, "_constant", None)
        if constant is not None:
            # One in-set config dominated training: the "tree" is a
            # single leaf answering that config for every shape.
            one_leaf = _Tree(
                feature=np.array([LEAF], dtype=np.int64),
                threshold=np.zeros(1),
                left=np.array([LEAF], dtype=np.int64),
                right=np.array([LEAF], dtype=np.int64),
                value=np.ones((1, 1)),
                impurity=np.zeros(1),
                n_samples=np.ones(1, dtype=np.int64),
            )
            compiled_tree = compile_tree(
                one_leaf, variant=variant, feature_names=names
            )
            return CompiledSelector(compiled_tree, (configs[int(constant)],))
        tree = self._tree()
        compiled_tree = compile_tree(tree, variant=variant, feature_names=names)
        # Pre-resolve each leaf to its configuration: argmax over the
        # leaf's class distribution, through the training classes to a
        # position in the pruned set — exactly the classifier's predict.
        classes = self.selector.estimator.classes_
        leaf_configs: list = [None] * tree.node_count
        for node in range(tree.node_count):
            if tree.feature[node] == LEAF:
                position = int(classes[int(np.argmax(tree.value[node]))])
                leaf_configs[node] = configs[position]
        return CompiledSelector(compiled_tree, leaf_configs)

    def __repr__(self) -> str:
        return (
            f"DeployedSelector({self.library!r}, "
            f"selector={self.selector.name!r})"
        )


def tune(
    train: PerformanceDataset,
    *,
    n_configs: int = 8,
    pruner: Optional[Pruner] = None,
    classifier: str = "DecisionTree",
    random_state: int = 0,
) -> DeployedSelector:
    """One-call pipeline: prune, fit a selector, build the library.

    Defaults follow the paper's conclusions: decision-tree pruning and a
    decision-tree runtime selector at a budget of 8 configurations.
    """
    pruner = pruner or DecisionTreePruner()
    pruned = pruner.select(train, n_configs)
    selector = make_selector(classifier, pruned, random_state=random_state)
    selector.fit(train)
    library = KernelLibrary(pruned.configs)
    return DeployedSelector(library, selector)


# -- pipeline stages ----------------------------------------------------------


def prune_stage(inputs, params, options) -> PrunedSet:
    """Pipeline stage: prune the configuration space on the train split.

    Parameters: ``pruner`` (technique name, see
    :func:`~repro.core.pruning.evaluate.make_pruner`), ``budget``, and
    ``random_state``.
    """
    pruner = make_pruner(
        params["pruner"], random_state=params.get("random_state", 0)
    )
    return pruner.select(inputs["split"].train, params["budget"])


def train_stage(inputs, params, options) -> DeployedSelector:
    """Pipeline stage: fit the runtime selector, bundle the library."""
    selector = make_selector(
        params["classifier"],
        inputs["prune"],
        random_state=params.get("random_state", 0),
    )
    selector.fit(inputs["split"].train)
    return DeployedSelector(KernelLibrary(inputs["prune"].configs), selector)


def eval_stage(inputs, params, options):
    """Pipeline stage: score the deployed selector on the test split."""
    return evaluate_selector(inputs["train"].selector, inputs["split"].test)
