"""The paper's contribution: dataset, pruning, runtime selection, deployment.

Pipeline (mirroring the paper's sections):

1. :mod:`repro.core.dataset` — build the (shapes x configs) performance
   table and normalize per shape (Section II).
2. :mod:`repro.core.pca_analysis` — choose the target number of kernels
   from the PCA variance curve (Section II.B, Fig 3).
3. :mod:`repro.core.pruning` — five techniques selecting <= N
   configurations (Section III, Fig 4).
4. :mod:`repro.core.selection` — runtime classifiers choosing among the
   pruned kernels (Section IV, Table I).
5. :mod:`repro.core.deploy` — the deployable artefact: a kernel library
   plus a selector, exportable as nested-if source code.
"""

from repro.core.dataset import PerformanceDataset, generate_dataset
from repro.core.pca_analysis import PCAAnalysis, analyze_dataset
from repro.core.pruning import (
    DecisionTreePruner,
    HDBSCANPruner,
    KMeansPruner,
    PCAKMeansPruner,
    PrunedSet,
    Pruner,
    TopNPruner,
    achievable_performance,
    default_pruners,
    sweep_pruners,
)
from repro.core.selection import (
    Selector,
    SelectorEvaluation,
    default_selectors,
    evaluate_selector,
    selection_labels,
    sweep_selectors,
)
from repro.core.deploy import DeployedSelector, tune

__all__ = [
    "DecisionTreePruner",
    "DeployedSelector",
    "HDBSCANPruner",
    "KMeansPruner",
    "PCAAnalysis",
    "PCAKMeansPruner",
    "PerformanceDataset",
    "PrunedSet",
    "Pruner",
    "Selector",
    "SelectorEvaluation",
    "TopNPruner",
    "achievable_performance",
    "analyze_dataset",
    "default_pruners",
    "default_selectors",
    "evaluate_selector",
    "generate_dataset",
    "selection_labels",
    "sweep_pruners",
    "sweep_selectors",
    "tune",
]
