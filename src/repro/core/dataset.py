"""The performance dataset: shapes x configurations achieved GFLOP/s.

Wraps the raw benchmark table with the operations the paper's pipeline
needs — per-shape normalization, feature extraction, best-config queries,
train/test splitting — plus persistence and the one-call
:func:`generate_dataset` regeneration entry point.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.bench.cache import CacheMismatchError
from repro.bench.cache import load_dataset as _load_raw
from repro.bench.cache import save_dataset as _save_raw
from repro.bench.runner import BenchmarkResult, BenchmarkRunner, RunnerConfig
from repro.kernels.params import KernelConfig
from repro.perfmodel.params import PerfModelParams
from repro.sycl.device import Device
from repro.utils.rng import rng_from
from repro.workloads.extract import extract_dataset_shapes
from repro.workloads.gemm import GemmShape
from repro.workloads.placement import place_shapes

__all__ = [
    "DatasetSplit",
    "PerformanceDataset",
    "dataset_stage",
    "generate_dataset",
    "split_stage",
    "sweep_stage",
]

DEFAULT_NETWORKS: Tuple[str, ...] = ("vgg16", "resnet50", "mobilenet_v2")


@dataclass(frozen=True)
class PerformanceDataset:
    """Immutable view of a benchmark sweep.

    Attributes
    ----------
    shapes / configs:
        Row and column identities of the table.
    gflops:
        (n_shapes, n_configs) achieved GFLOP/s.
    device_name:
        Provenance label.
    """

    shapes: Tuple[GemmShape, ...]
    configs: Tuple[KernelConfig, ...]
    gflops: np.ndarray
    device_name: str = "unknown"

    def __post_init__(self) -> None:
        expected = (len(self.shapes), len(self.configs))
        if self.gflops.shape != expected:
            raise ValueError(
                f"gflops shape {self.gflops.shape} does not match {expected}"
            )
        # NaN marks a cell whose benchmark failed after retries (see
        # repro.bench.failures); everything measured must be positive.
        if np.any(self.gflops <= 0) or np.any(np.isinf(self.gflops)):
            raise ValueError(
                "gflops must be positive (NaN marks a failed measurement)"
            )
        self._check_rows("constructed")

    def _check_rows(self, context: str) -> None:
        """Reject all-NaN rows with a diagnostic naming the shapes.

        An all-NaN row means every configuration for that shape failed
        (or, in an onboarding partial sweep, was never sampled); letting
        it through would silently turn ``normalized()`` into a zero row
        and ``best_config_indices()`` into an argmax over ``-inf`` that
        always answers config 0.  The constructor rejects such tables,
        and the row-reading views re-check so a dataset arriving through
        a decoding path that skipped validation still fails loudly.
        """
        dead = ~np.any(np.isfinite(self.gflops), axis=1)
        if np.any(dead):
            rows = np.flatnonzero(dead)
            named = ", ".join(str(self.shapes[i]) for i in rows[:3])
            more = f" (+{len(rows) - 3} more)" if len(rows) > 3 else ""
            raise ValueError(
                f"{len(rows)} shape(s) have no successful measurement "
                f"({context} dataset, device {self.device_name!r}): "
                f"{named}{more} — every shape needs at least one finite "
                "gflops cell; sample more cells or drop the shapes"
            )

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_benchmark(cls, result: BenchmarkResult) -> "PerformanceDataset":
        return cls(
            shapes=result.shapes,
            configs=result.configs,
            gflops=result.gflops,
            device_name=result.device_name,
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PerformanceDataset":
        return cls.from_benchmark(_load_raw(path))

    def save(self, path: Union[str, Path]) -> Path:
        result = BenchmarkResult(
            device_name=self.device_name,
            shapes=self.shapes,
            configs=self.configs,
            gflops=self.gflops,
            seconds=np.array(
                [[s.flops for s in self.shapes]]
            ).T
            / self.gflops
            / 1e9,
        )
        return _save_raw(result, path)

    # -- core views --------------------------------------------------------

    @property
    def n_shapes(self) -> int:
        return len(self.shapes)

    @property
    def n_configs(self) -> int:
        return len(self.configs)

    def normalized(self) -> np.ndarray:
        """Per-shape normalized performance: each row divided by its max.

        This is the paper's representation: "for each set of matrix sizes
        ... a vector of 640 normalized performance scores".

        Failed (NaN) cells are masked to 0.0 — a configuration that could
        not be measured achieves no relative performance, so it is never
        the per-shape best and never survives pruning or selection.  All
        downstream consumers (clustering, labels, geomeans) therefore see
        a finite table.
        """
        self._check_rows("normalized")
        best = np.nanmax(self.gflops, axis=1, keepdims=True)
        return np.nan_to_num(self.gflops / best, nan=0.0)

    def features(self) -> np.ndarray:
        """(n_shapes, 4) matrix-size feature matrix for the selectors."""
        return np.vstack([s.features() for s in self.shapes])

    def best_config_indices(self) -> np.ndarray:
        """Index of the optimal configuration for every shape."""
        self._check_rows("label extraction over a")
        return np.argmax(np.nan_to_num(self.gflops, nan=-np.inf), axis=1)

    def win_counts(self) -> np.ndarray:
        """How often each configuration is optimal (Fig 2's data)."""
        return np.bincount(self.best_config_indices(), minlength=self.n_configs)

    def best_gflops(self) -> np.ndarray:
        return np.nanmax(self.gflops, axis=1)

    @property
    def failed_mask(self) -> np.ndarray:
        """(n_shapes, n_configs) boolean mask of failed (NaN) cells."""
        return np.isnan(self.gflops)

    @property
    def n_failed_cells(self) -> int:
        return int(self.failed_mask.sum())

    def config_index(self, config: KernelConfig) -> int:
        try:
            return self.configs.index(config)
        except ValueError:
            raise KeyError(f"{config} is not a column of this dataset") from None

    # -- restructuring -----------------------------------------------------

    def subset(self, indices: Sequence[int]) -> "PerformanceDataset":
        """Dataset restricted to the given shape rows."""
        indices = np.asarray(indices, dtype=np.int64)
        if len(indices) == 0:
            raise ValueError("subset must keep at least one shape")
        return PerformanceDataset(
            shapes=tuple(self.shapes[i] for i in indices),
            configs=self.configs,
            gflops=self.gflops[indices],
            device_name=self.device_name,
        )

    def split(
        self, *, test_size: float = 0.2, random_state=0
    ) -> Tuple["PerformanceDataset", "PerformanceDataset"]:
        """Random train/test split of the shapes (paper: 136/34 of 170)."""
        if not 0.0 < test_size < 1.0:
            raise ValueError(f"test_size must be in (0, 1), got {test_size}")
        n = self.n_shapes
        n_test = max(1, int(round(n * test_size)))
        if n_test >= n:
            raise ValueError("test split would consume the whole dataset")
        order = np.arange(n)
        rng_from(random_state).shuffle(order)
        return self.subset(order[n_test:]), self.subset(order[:n_test])

    def __repr__(self) -> str:
        return (
            f"PerformanceDataset({self.n_shapes} shapes x "
            f"{self.n_configs} configs, device={self.device_name!r})"
        )


@dataclass(frozen=True)
class DatasetSplit:
    """A train/test pair produced by the pipeline's split stage."""

    train: PerformanceDataset
    test: PerformanceDataset


def sweep_stage(inputs, params, options) -> BenchmarkResult:
    """Pipeline stage: run the full benchmark sweep.

    Fingerprinted parameters: ``device_spec`` (a
    :class:`~repro.sycl.device.DeviceSpec`), ``networks``, ``runner``
    (a :class:`RunnerConfig`), optional ``model_params``, and optional
    ``placements`` (a tuple of :class:`~repro.workloads.placement.
    DataPlacement` values crossing every extracted shape with a data
    residency — absent from the params dict for legacy sweeps, so
    existing fingerprints are untouched).  Worker count comes from
    ``options`` — it never affects the result.
    """
    device = Device(params["device_spec"])
    shapes, _ = extract_dataset_shapes(networks=tuple(params["networks"]))
    placements = params.get("placements")
    if placements:
        shapes = place_shapes(shapes, placements)
    runner = BenchmarkRunner(
        device,
        runner_config=params["runner"],
        model_params=params.get("model_params"),
    )
    return runner.run(shapes, max_workers=options.get("max_workers", 1))


def dataset_stage(inputs, params, options) -> PerformanceDataset:
    """Pipeline stage: normalise the raw sweep into the dataset view."""
    return PerformanceDataset.from_benchmark(inputs["sweep"])


def split_stage(inputs, params, options) -> DatasetSplit:
    """Pipeline stage: deterministic train/test split of the dataset."""
    train, test = inputs["dataset"].split(
        test_size=params["test_size"], random_state=params["split_seed"]
    )
    return DatasetSplit(train=train, test=test)


def generate_dataset(
    *,
    device: Optional[Device] = None,
    runner_config: Optional[RunnerConfig] = None,
    model_params: Optional[PerfModelParams] = None,
    networks: Sequence[str] = DEFAULT_NETWORKS,
    placements: Optional[Sequence[str]] = None,
    cache_path: Optional[Union[str, Path]] = None,
    max_workers: Optional[int] = 1,
    store=None,
) -> PerformanceDataset:
    """Regenerate the paper's dataset end to end.

    Extracts GEMM shapes from the three networks, benchmarks all 640
    configurations per shape on the simulated device and returns the
    table.  With ``cache_path`` set, a previously saved dataset on disk
    is reused — but only if its recorded meta (runner protocol, device,
    model constants) matches this request; a mismatch is treated as a
    cache miss with a warning and the sweep is regenerated.

    With ``store`` set to a
    :class:`~repro.pipeline.store.ArtifactStore`, generation routes
    through the content-addressed pipeline instead: the sweep and
    dataset stages are fingerprinted and reused incrementally
    (``cache_path`` is then ignored).

    With ``placements`` set (e.g. ``("device", "host")``), every
    extracted shape is crossed with the given data residencies before
    the sweep, so the table gains a placement axis.  The flat ``.npz``
    cache cannot round-trip placed shapes, so ``cache_path`` is ignored
    in that mode (the pipeline ``store`` path handles it fine — its
    codec pickles shapes faithfully).
    """
    device = device or Device.r9_nano()
    effective_runner = runner_config or RunnerConfig()

    if store is not None:
        from repro.pipeline.paper import generate_dataset_stages

        return generate_dataset_stages(
            store,
            device=device,
            runner_config=effective_runner,
            model_params=model_params,
            networks=tuple(networks),
            placements=tuple(placements) if placements else None,
            max_workers=max_workers or 1,
        )

    if placements:
        cache_path = None

    if cache_path is not None:
        cache_path = Path(cache_path)
        effective = (
            cache_path if cache_path.suffix == ".npz"
            else cache_path.with_suffix(cache_path.suffix + ".npz")
        )
        if effective.exists():
            try:
                return PerformanceDataset.from_benchmark(
                    _load_raw(
                        effective,
                        expected_runner=effective_runner,
                        expected_device_name=device.name,
                        expected_model_params=model_params,
                    )
                )
            except CacheMismatchError as exc:
                warnings.warn(
                    f"ignoring stale dataset cache: {exc}; regenerating",
                    stacklevel=2,
                )

    shapes, _ = extract_dataset_shapes(networks=networks)
    if placements:
        shapes = place_shapes(shapes, placements)
    runner = BenchmarkRunner(
        device,
        runner_config=runner_config,
        model_params=model_params,
    )
    result = runner.run(shapes, max_workers=max_workers)
    if cache_path is not None:
        _save_raw(result, cache_path, model_params=model_params)
    return PerformanceDataset.from_benchmark(result)
