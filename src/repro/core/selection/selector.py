"""The selector abstraction and training-label construction."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import PerformanceDataset
from repro.core.pruning.base import PrunedSet
from repro.kernels.params import KernelConfig
from repro.workloads.gemm import GemmShape

__all__ = ["Selector", "selection_labels"]


def selection_labels(
    dataset: PerformanceDataset, pruned: PrunedSet
) -> np.ndarray:
    """Training labels: the best *in-set* configuration for each shape.

    Labels are positions within the pruned set (0..len(pruned)-1), not
    global config indices — the classifier only ever chooses among the
    bundled kernels.  Failed (NaN) cells never label a shape: they rank
    below every successful measurement.
    """
    cols = np.asarray(pruned.indices, dtype=np.int64)
    in_set = np.nan_to_num(dataset.gflops[:, cols], nan=-np.inf)
    return np.argmax(in_set, axis=1)


class Selector:
    """A fitted classifier choosing one bundled kernel per shape.

    Wraps any estimator with ``fit(X, y)`` / ``predict(X)`` (the
    :mod:`repro.ml` classifiers) together with the pruned set it selects
    from.
    """

    def __init__(self, name: str, estimator, pruned: PrunedSet):
        self.name = name
        self.estimator = estimator
        self.pruned = pruned
        self._fitted = False
        #: Feature vocabulary recorded at fit time (the shape type's
        #: FEATURE_NAMES).  Several shape extensions share a feature
        #: width (sparse density and placement are both five-wide), so
        #: downstream export/codegen must not infer names from width
        #: alone.
        self.feature_names: Optional[Tuple[str, ...]] = None

    def fit(self, dataset: PerformanceDataset) -> "Selector":
        """Train on a dataset's features against best-in-set labels."""
        X = dataset.features()
        y = selection_labels(dataset, self.pruned)
        first = type(dataset.shapes[0])
        self.feature_names = tuple(
            getattr(first, "FEATURE_NAMES", GemmShape.FEATURE_NAMES)
        )
        if len(np.unique(y)) < 2:
            # Degenerate training set: one in-set config dominates
            # everywhere.  Remember the constant instead of fitting.
            self._constant: Optional[int] = int(y[0])
        else:
            self._constant = None
            self.estimator.fit(X, y)
        self._fitted = True
        return self

    def predict_indices(self, features: np.ndarray) -> np.ndarray:
        """Positions within the pruned set, one per feature row."""
        if not self._fitted:
            raise RuntimeError(f"selector {self.name!r} is not fitted")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if self._constant is not None:
            return np.full(len(features), self._constant, dtype=np.int64)
        return np.asarray(self.estimator.predict(features), dtype=np.int64)

    def select(self, shape: GemmShape) -> KernelConfig:
        """The configuration to launch for one GEMM shape."""
        pos = int(self.predict_indices(shape.features()[None, :])[0])
        return self.pruned.configs[pos]

    def select_batch(self, shapes: Sequence[GemmShape]) -> Tuple[KernelConfig, ...]:
        """Configurations for many shapes in one classifier pass.

        Equivalent to ``tuple(self.select(s) for s in shapes)`` but pays
        estimator overhead (validation, tree descent set-up) once for the
        whole batch instead of per shape.
        """
        shapes = tuple(shapes)
        if not shapes:
            return ()
        features = np.stack([s.features() for s in shapes])
        positions = self.predict_indices(features)
        configs = self.pruned.configs
        return tuple(configs[int(pos)] for pos in positions)

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return f"Selector({self.name!r}, {len(self.pruned)} configs, {state})"
