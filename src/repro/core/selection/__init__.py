"""Section IV: runtime selection among the pruned kernels.

Given a pruned configuration set, a *selector* is a classifier mapping a
GEMM shape's features to one of the bundled configurations.  This package
provides the six classifiers of Table I behind one protocol, the scoring
that reproduces the table, and selection-latency measurement (the paper's
deployment constraint: selection must cost far less than it saves).
"""

from repro.core.selection.selector import Selector, selection_labels
from repro.core.selection.classifiers import default_selectors, make_selector
from repro.core.selection.evaluate import (
    SelectorEvaluation,
    evaluate_selector,
    sweep_selectors,
)
from repro.core.selection.baselines import OracleSelector, StaticBestSelector
from repro.core.selection.dynamic import DynamicTrialSelector
from repro.core.selection.latency import measure_selection_latency

__all__ = [
    "DynamicTrialSelector",
    "OracleSelector",
    "Selector",
    "StaticBestSelector",
    "SelectorEvaluation",
    "default_selectors",
    "evaluate_selector",
    "make_selector",
    "measure_selection_latency",
    "selection_labels",
    "sweep_selectors",
]
