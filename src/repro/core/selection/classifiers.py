"""The six classifiers of Table I, behind a common factory.

Classifier hyper-parameters follow the paper's setup (scikit-learn
defaults of the era, raw unscaled matrix-size features):

* DecisionTree — unbounded CART;
* RandomForest — 100 bagged trees;
* 1NearestNeighbor / 3NearestNeighbors — exact kNN;
* LinearSVM / RadialSVM — SMO-trained SVC; the radial variant on raw
  features reproduces the paper's ~55 % collapse.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.pruning.base import PrunedSet
from repro.core.selection.selector import Selector
from repro.ml.forest import RandomForestClassifier
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.svm import SVC
from repro.ml.tree.classifier import DecisionTreeClassifier

__all__ = ["TABLE1_CLASSIFIERS", "default_selectors", "make_selector"]

#: Table I's classifier names, in the paper's row order.
TABLE1_CLASSIFIERS = (
    "DecisionTree",
    "RandomForest",
    "1NearestNeighbor",
    "3NearestNeighbors",
    "LinearSVM",
    "RadialSVM",
)


def _build_estimator(name: str, random_state: int):
    builders: Dict[str, Callable] = {
        "DecisionTree": lambda: DecisionTreeClassifier(),
        "RandomForest": lambda: RandomForestClassifier(
            n_estimators=100, random_state=random_state
        ),
        "1NearestNeighbor": lambda: KNeighborsClassifier(n_neighbors=1),
        "3NearestNeighbors": lambda: KNeighborsClassifier(n_neighbors=3),
        "LinearSVM": lambda: SVC(kernel="linear", random_state=random_state),
        # gamma="auto" (1/n_features) is the scikit-learn default of the
        # paper's era.  On raw matrix-size features it drives the RBF
        # kernel matrix towards identity, so the classifier degenerates to
        # a constant prediction — the mechanism behind Table I's flat ~55%
        # RadialSVM row.
        "RadialSVM": lambda: SVC(
            kernel="rbf", gamma="auto", random_state=random_state
        ),
    }
    try:
        return builders[name]()
    except KeyError:
        raise ValueError(
            f"unknown classifier {name!r}; known: {list(builders)}"
        ) from None


def make_selector(
    name: str, pruned: PrunedSet, *, random_state: int = 0
) -> Selector:
    """An unfitted selector for one Table I classifier."""
    return Selector(name, _build_estimator(name, random_state), pruned)


def default_selectors(
    pruned: PrunedSet, *, random_state: int = 0
) -> List[Selector]:
    """All six Table I selectors (unfitted), in the paper's order."""
    return [
        make_selector(name, pruned, random_state=random_state)
        for name in TABLE1_CLASSIFIERS
    ]
