"""Scoring selectors against the absolute optimum (Table I)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.dataset import PerformanceDataset
from repro.core.pruning.base import Pruner
from repro.core.pruning.evaluate import achievable_performance
from repro.core.selection.classifiers import default_selectors
from repro.core.selection.selector import Selector
from repro.utils.maths import geometric_mean

__all__ = ["SelectorEvaluation", "evaluate_selector", "sweep_selectors"]


@dataclass(frozen=True)
class SelectorEvaluation:
    """One Table I cell with its context."""

    classifier: str
    n_configs: int
    #: Geometric-mean achieved performance vs the *absolute* optimum.
    score: float
    #: Upper bound given the pruned set (the table's caption values).
    ceiling: float
    #: Fraction of test shapes where the selector picked the best
    #: *in-set* configuration (classification accuracy).
    accuracy: float


def evaluate_selector(
    selector: Selector, test: PerformanceDataset
) -> SelectorEvaluation:
    """Score a fitted selector on held-out shapes.

    The score divides the performance of the *chosen* configuration by
    the optimum over all 640, so it is bounded by the pruned set's
    achievable ceiling — exactly how Table I is laid out.
    """
    normalized = test.normalized()
    cols = np.asarray(selector.pruned.indices, dtype=np.int64)
    predictions = selector.predict_indices(test.features())
    achieved = normalized[np.arange(test.n_shapes), cols[predictions]]
    best_in_set = np.argmax(test.gflops[:, cols], axis=1)
    return SelectorEvaluation(
        classifier=selector.name,
        n_configs=len(selector.pruned),
        score=float(geometric_mean(achieved)),
        ceiling=achievable_performance(selector.pruned, test),
        accuracy=float(np.mean(predictions == best_in_set)),
    )


def sweep_selectors(
    train: PerformanceDataset,
    test: PerformanceDataset,
    pruner: Pruner,
    *,
    budgets: Sequence[int] = (5, 6, 8, 15),
    random_state: int = 0,
) -> Dict[int, List[SelectorEvaluation]]:
    """Table I: every classifier at every configuration budget.

    The paper prunes with the decision tree (its best technique) and
    trains each classifier on the training split's best-in-set labels.
    """
    results: Dict[int, List[SelectorEvaluation]] = {}
    for budget in budgets:
        pruned = pruner.select(train, int(budget))
        evaluations = []
        for selector in default_selectors(pruned, random_state=random_state):
            selector.fit(train)
            evaluations.append(evaluate_selector(selector, test))
        results[int(budget)] = evaluations
    return results
