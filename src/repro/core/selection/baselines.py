"""Reference selection policies bounding the classifiers of Table I.

* :class:`StaticBestSelector` — no runtime selection at all: always the
  configuration with the best training-set geometric mean.  The paper's
  implicit lower bar ("deploying ... a more general selection of kernels
  is required"); also what a collapsed classifier (Table I's RadialSVM)
  effectively becomes.
* :class:`OracleSelector` — always the best *bundled* configuration for
  the query shape, looked up from a dataset.  Scores exactly the pruned
  set's achievable ceiling, which is how Table I's caption values arise.

Both satisfy the same interface as :class:`~repro.core.selection.selector.Selector`
(``fit(dataset)`` / ``predict_indices`` / ``select``), so they slot into
:func:`~repro.core.selection.evaluate.evaluate_selector` unchanged.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.dataset import PerformanceDataset
from repro.core.pruning.base import PrunedSet
from repro.kernels.params import KernelConfig
from repro.utils.maths import geometric_mean
from repro.workloads.gemm import GemmShape

__all__ = ["OracleSelector", "StaticBestSelector"]


class StaticBestSelector:
    """Always ship-and-run one configuration: the training geomean winner."""

    def __init__(self, pruned: PrunedSet):
        self.name = "StaticBest"
        self.pruned = pruned
        self._position: Optional[int] = None

    def fit(self, dataset: PerformanceDataset) -> "StaticBestSelector":
        cols = np.asarray(self.pruned.indices, dtype=np.int64)
        in_set = dataset.normalized()[:, cols]
        scores = geometric_mean(in_set, axis=0)
        self._position = int(np.argmax(scores))
        return self

    def predict_indices(self, features: np.ndarray) -> np.ndarray:
        if self._position is None:
            raise RuntimeError("StaticBestSelector is not fitted")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return np.full(len(features), self._position, dtype=np.int64)

    def select(self, shape: GemmShape) -> KernelConfig:
        return self.pruned.configs[
            int(self.predict_indices(shape.features()[None, :])[0])
        ]

    def __repr__(self) -> str:
        state = "unfitted" if self._position is None else "fitted"
        return f"StaticBestSelector({len(self.pruned)} configs, {state})"


class OracleSelector:
    """Perfect in-set selection, looked up from measured data.

    Queries for shapes absent from the lookup dataset raise — an oracle
    cannot guess — which also guards experiments against accidentally
    evaluating it on unmeasured shapes.
    """

    def __init__(self, pruned: PrunedSet, lookup: PerformanceDataset):
        self.name = "Oracle"
        self.pruned = pruned
        cols = np.asarray(pruned.indices, dtype=np.int64)
        best = np.argmax(lookup.gflops[:, cols], axis=1)
        self._table: Dict[Tuple[int, ...], int] = {
            shape.as_tuple(): int(position)
            for shape, position in zip(lookup.shapes, best)
        }
        self._lookup_features = {
            tuple(shape.features()): shape.as_tuple() for shape in lookup.shapes
        }

    def fit(self, dataset: PerformanceDataset) -> "OracleSelector":
        """No-op: the oracle was built from its lookup dataset."""
        return self

    def select(self, shape: GemmShape) -> KernelConfig:
        key = shape.as_tuple()
        if key not in self._table:
            raise KeyError(f"oracle has no measurement for shape {shape}")
        return self.pruned.configs[self._table[key]]

    def predict_indices(self, features: np.ndarray) -> np.ndarray:
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        out = np.empty(len(features), dtype=np.int64)
        for i, row in enumerate(features):
            key = self._lookup_features.get(tuple(row))
            if key is None:
                raise KeyError(f"oracle has no measurement for features {row}")
            out[i] = self._table[key]
        return out

    def __repr__(self) -> str:
        return f"OracleSelector({len(self.pruned)} configs, {len(self._table)} shapes)"
