"""Dynamic (trial-run) selection: the ML-framework baseline.

The paper's introduction: "autotuning techniques in machine learning
frameworks tend to be dynamic, doing trial runs the first time an input
size is used and choosing the best for subsequent runs."  This module
implements that policy so the trade-off the paper argues about is
measurable: a dynamic selector finds the *true* best bundled kernel per
size, but pays a full benchmark sweep on every first encounter — which a
research workload with ever-changing topologies hits constantly, while a
trained model selector answers instantly (at some accuracy cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.bench.runner import BenchmarkRunner
from repro.core.pruning.base import PrunedSet
from repro.kernels.params import KernelConfig
from repro.workloads.gemm import GemmShape

__all__ = ["DynamicTrialSelector", "TrialStats"]


@dataclass(frozen=True)
class TrialStats:
    """Accounting of what the dynamic policy has spent and saved."""

    lookups: int
    trial_sweeps: int
    #: Simulated device seconds burned on trial benchmarks.
    trial_seconds: float

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return 1.0 - self.trial_sweeps / self.lookups


class DynamicTrialSelector:
    """Benchmark-on-first-use selection over a bundled kernel set.

    ``trial_iterations`` caps the timed iterations of each trial
    benchmark (instead of the runner's configured protocol), trading
    choice confidence for cheaper first encounters; the per-sweep
    ``trial_seconds`` accounting reflects the reduced run count.
    """

    def __init__(
        self,
        runner: BenchmarkRunner,
        pruned: PrunedSet,
        *,
        trial_iterations: Optional[int] = None,
    ):
        if trial_iterations is not None and trial_iterations < 1:
            raise ValueError("trial_iterations must be >= 1 when given")
        if len(pruned) == 0:
            raise ValueError(
                "pruned set is empty: a dynamic selector needs at least "
                "one bundled configuration to trial"
            )
        self._runner = runner
        self._pruned = pruned
        self._trial_iterations = trial_iterations
        self._cache: Dict[Tuple[int, int, int, int], KernelConfig] = {}
        self._lookups = 0
        self._sweeps = 0
        self._trial_seconds = 0.0

    @property
    def pruned(self) -> PrunedSet:
        return self._pruned

    @property
    def stats(self) -> TrialStats:
        return TrialStats(
            lookups=self._lookups,
            trial_sweeps=self._sweeps,
            trial_seconds=self._trial_seconds,
        )

    def select(self, shape: GemmShape) -> KernelConfig:
        """Cached best kernel, running the trial sweep on a first use."""
        self._lookups += 1
        key = shape.as_tuple()
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        self._sweeps += 1
        warmup = self._runner.runner_config.warmup_iterations
        best_config = self._pruned.configs[0]
        best_time = float("inf")
        for config in self._pruned.configs:
            summary = self._runner.bench_single(
                shape, config, iterations=self._trial_iterations
            )
            # Every trial iteration runs on the device; the protocol's
            # warm-up launches execute too.
            self._trial_seconds += summary.mean * (warmup + summary.iterations)
            if summary.mean < best_time:
                best_time = summary.mean
                best_config = config
        self._cache[key] = best_config
        return best_config

    def select_batch(self, shapes: Sequence[GemmShape]) -> Tuple[KernelConfig, ...]:
        """Best bundled kernel per shape; each distinct new shape is
        trial-swept once, repeats within the batch hit the cache."""
        return tuple(self.select(shape) for shape in shapes)

    def reset(self) -> None:
        """Forget all trials (e.g., after a device or driver change)."""
        self._cache.clear()
        self._lookups = 0
        self._sweeps = 0
        self._trial_seconds = 0.0
