"""Selection-latency measurement.

"There is little to be gained by choosing a complex process to achieve
slightly better performance if this leads to significantly more time
being spent in that selection process."  This module measures the
wall-clock cost of one selection decision for any fitted selector, which
the latency benchmarks compare against modelled kernel runtimes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.selection.selector import Selector
from repro.workloads.gemm import GemmShape

__all__ = ["SelectionLatency", "measure_selection_latency"]


@dataclass(frozen=True)
class SelectionLatency:
    """Per-decision latency statistics (seconds)."""

    classifier: str
    mean: float
    median: float
    p95: float
    repeats: int


def measure_selection_latency(
    selector: Selector,
    shape: GemmShape,
    *,
    repeats: int = 200,
    warmup: int = 20,
) -> SelectionLatency:
    """Time ``selector.select(shape)`` over many repeats."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        selector.select(shape)
    samples = np.empty(repeats)
    for i in range(repeats):
        start = time.perf_counter()
        selector.select(shape)
        samples[i] = time.perf_counter() - start
    return SelectionLatency(
        classifier=selector.name,
        mean=float(samples.mean()),
        median=float(np.median(samples)),
        p95=float(np.percentile(samples, 95)),
        repeats=repeats,
    )
