"""Section II.B: choosing the target number of kernels via PCA.

"By comparing the number of components required to account for a given
threshold of the total variance we can estimate how many different
clusters would be required" — Figure 3's analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.dataset import PerformanceDataset
from repro.ml.pca import PCA

__all__ = ["PCAAnalysis", "analyze_dataset"]

#: Variance thresholds the paper reads off Figure 3.
DEFAULT_THRESHOLDS: Tuple[float, ...] = (0.80, 0.90, 0.95)


@dataclass(frozen=True)
class PCAAnalysis:
    """Explained-variance structure of a performance dataset."""

    explained_variance_ratio: np.ndarray
    components_for_threshold: Dict[float, int]

    @property
    def cumulative_ratio(self) -> np.ndarray:
        return np.cumsum(self.explained_variance_ratio)

    def suggested_budget_range(self) -> Tuple[int, int]:
        """The config-budget interval the variance structure suggests.

        The paper takes the components for the lowest and highest
        thresholds (80% -> 4, 95% -> 15) and investigates budgets between
        them.
        """
        values = sorted(self.components_for_threshold.values())
        return values[0], values[-1]


def analyze_dataset(
    dataset: PerformanceDataset,
    *,
    thresholds: Tuple[float, ...] = DEFAULT_THRESHOLDS,
    n_components: int | None = None,
) -> PCAAnalysis:
    """PCA over the normalized performance vectors (shapes as samples)."""
    if not thresholds:
        raise ValueError("at least one variance threshold is required")
    data = dataset.normalized()
    max_components = min(data.shape)
    pca = PCA(n_components=n_components or max_components).fit(data)
    components = {
        float(t): pca.components_for_variance(t) for t in sorted(thresholds)
    }
    return PCAAnalysis(
        explained_variance_ratio=pca.explained_variance_ratio_,
        components_for_threshold=components,
    )
