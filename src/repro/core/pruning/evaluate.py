"""Scoring pruned sets and the Figure 4 sweep.

"The performance of the clustering technique was measured by taking the
geometric mean of the optimal result achievable given that selection for
each set of matrix sizes in the test set."
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.dataset import PerformanceDataset
from repro.core.pruning.base import PrunedSet, Pruner
from repro.core.pruning.decision_tree import DecisionTreePruner
from repro.core.pruning.hdbscan import HDBSCANPruner
from repro.core.pruning.kmeans import KMeansPruner
from repro.core.pruning.pca_kmeans import PCAKMeansPruner
from repro.core.pruning.topn import TopNPruner
from repro.utils.maths import geometric_mean

__all__ = [
    "achievable_performance",
    "default_pruners",
    "make_pruner",
    "sweep_pruners",
]


def achievable_performance(
    pruned: PrunedSet, dataset: PerformanceDataset
) -> float:
    """Best-in-set normalized performance, geometric mean over shapes.

    1.0 means the set contains the optimal configuration for every shape
    in ``dataset``; the paper reports this as a percentage.
    """
    normalized = dataset.normalized()
    cols = np.asarray(pruned.indices, dtype=np.int64)
    per_shape_best = normalized[:, cols].max(axis=1)
    return float(geometric_mean(per_shape_best))


def default_pruners(*, random_state: int = 0) -> List[Pruner]:
    """The paper's five techniques, in its presentation order."""
    return [
        TopNPruner(),
        KMeansPruner(random_state=random_state),
        PCAKMeansPruner(random_state=random_state),
        HDBSCANPruner(),
        DecisionTreePruner(),
    ]


def make_pruner(name: str, *, random_state: int = 0) -> Pruner:
    """A pruner by its display name (the pipeline's by-name factory)."""
    for pruner in default_pruners(random_state=random_state):
        if pruner.name == name:
            return pruner
    known = [p.name for p in default_pruners()]
    raise ValueError(f"unknown pruner {name!r}; known: {known}")


def sweep_pruners(
    train: PerformanceDataset,
    test: PerformanceDataset,
    *,
    budgets: Sequence[int] = tuple(range(4, 16)),
    pruners: Sequence[Pruner] | None = None,
) -> Dict[str, Dict[int, float]]:
    """Figure 4's data: achievable test performance per method and budget.

    Returns ``{method name: {budget: score}}`` with scores in (0, 1].
    """
    if pruners is None:
        pruners = default_pruners()
    if not budgets:
        raise ValueError("at least one budget is required")
    results: Dict[str, Dict[int, float]] = {}
    for pruner in pruners:
        scores: Dict[int, float] = {}
        for budget in budgets:
            pruned = pruner.select(train, budget)
            scores[int(budget)] = achievable_performance(pruned, test)
        results[pruner.name] = scores
    return results
