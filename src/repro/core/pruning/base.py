"""Pruner protocol and the result type shared by all techniques."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence, Tuple


from repro.core.dataset import PerformanceDataset
from repro.kernels.params import KernelConfig
from repro.utils.validation import check_positive_int

__all__ = ["PrunedSet", "Pruner"]


@dataclass(frozen=True)
class PrunedSet:
    """The configurations a pruning technique chose to bundle.

    ``indices`` are columns of the dataset the set was selected from;
    ``configs`` the corresponding configurations.  The set size is at most
    the requested budget (techniques whose representatives share a best
    config return fewer).
    """

    indices: Tuple[int, ...]
    configs: Tuple[KernelConfig, ...]
    method: str

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.configs):
            raise ValueError("indices and configs must have equal length")
        if len(self.indices) == 0:
            raise ValueError("a pruned set cannot be empty")
        if len(set(self.indices)) != len(self.indices):
            raise ValueError("pruned set contains duplicate configurations")

    def __len__(self) -> int:
        return len(self.indices)


def _dedupe_keep_order(indices) -> List[int]:
    seen = set()
    out = []
    for i in indices:
        i = int(i)
        if i not in seen:
            seen.add(i)
            out.append(i)
    return out


class Pruner(abc.ABC):
    """A technique selecting at most ``n_configs`` configurations."""

    #: Display name used in figures/tables.
    name: str = "pruner"

    @abc.abstractmethod
    def select(
        self, dataset: PerformanceDataset, n_configs: int
    ) -> PrunedSet:
        """Choose <= ``n_configs`` configurations from the training data."""

    def _make_set(
        self, dataset: PerformanceDataset, indices: Sequence[int], n_configs: int
    ) -> PrunedSet:
        """Finalize: dedupe, clip to the budget, attach configs."""
        check_positive_int(n_configs, "n_configs")
        unique = _dedupe_keep_order(indices)[:n_configs]
        if not unique:
            raise ValueError(f"{self.name} produced no configurations")
        return PrunedSet(
            indices=tuple(unique),
            configs=tuple(dataset.configs[i] for i in unique),
            method=self.name,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
