"""HDBSCAN pruning.

HDBSCAN does not take a cluster count, so the pruner searches
``min_cluster_size`` for the clustering that yields the most clusters not
exceeding the budget.  Cluster medoids (in mutual reachability) are the
representatives; noise points are ignored.  If density structure yields
fewer clusters than the budget, the remaining slots are filled with the
top winners not already selected — the bound is an upper bound, but an
undersized library wastes budget the other techniques use.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.dataset import PerformanceDataset
from repro.core.pruning.base import PrunedSet, Pruner
from repro.core.pruning.topn import TopNPruner
from repro.ml.hdbscan import HDBSCAN

__all__ = ["HDBSCANPruner"]


class HDBSCANPruner(Pruner):
    name = "hdbscan"

    def __init__(self, *, min_samples: Optional[int] = None, max_mcs: int = 32):
        self.min_samples = min_samples
        self.max_mcs = max_mcs

    def select(self, dataset: PerformanceDataset, n_configs: int) -> PrunedSet:
        data = dataset.normalized()
        n = data.shape[0]

        best_fit = None  # (n_clusters, -mcs, estimator)
        upper = min(self.max_mcs, max(2, n // 2))
        for mcs in range(2, upper + 1):
            try:
                est = HDBSCAN(
                    min_cluster_size=mcs, min_samples=self.min_samples
                ).fit(data)
            except ValueError:
                continue
            if est.n_clusters_ == 0:
                continue
            if est.n_clusters_ <= n_configs:
                key = (est.n_clusters_, -mcs)
                if best_fit is None or key > best_fit[0]:
                    best_fit = (key, est)

        indices: list = []
        if best_fit is not None:
            est = best_fit[1]
            medoid_rows = est.cluster_medoids()
            indices = [int(np.argmax(data[row])) for row in medoid_rows]

        if len(set(indices)) < n_configs:
            # Fill remaining budget with the naive ranking.
            filler = TopNPruner().select(dataset, n_configs)
            indices.extend(filler.indices)
        return self._make_set(dataset, indices, n_configs)
