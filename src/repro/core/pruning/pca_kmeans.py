"""PCA + k-means pruning.

"PCA can be used to reduce the dimensionality of the data and so provide
a better coordinate system for k-means clustering, which struggles with
high dimensional data.  The centroids identified by k-means in this new
coordinate system can be mapped back to the original coordinate space to
give representatives of the clusters."
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import PerformanceDataset
from repro.core.pruning.base import PrunedSet, Pruner
from repro.ml.kmeans import KMeans
from repro.ml.pca import PCA

__all__ = ["PCAKMeansPruner"]


class PCAKMeansPruner(Pruner):
    name = "pca+k-means"

    def __init__(
        self,
        *,
        variance_threshold: float = 0.95,
        n_init: int = 10,
        random_state: int = 0,
    ):
        if not 0.0 < variance_threshold <= 1.0:
            raise ValueError(
                f"variance_threshold must be in (0, 1], got {variance_threshold}"
            )
        self.variance_threshold = variance_threshold
        self.n_init = n_init
        self.random_state = random_state

    def select(self, dataset: PerformanceDataset, n_configs: int) -> PrunedSet:
        data = dataset.normalized()
        pca = PCA().fit(data)
        dims = pca.components_for_variance(self.variance_threshold)
        pca = PCA(n_components=dims).fit(data)
        reduced = pca.transform(data)

        k = min(n_configs, data.shape[0])
        km = KMeans(
            n_clusters=k, n_init=self.n_init, random_state=self.random_state
        ).fit(reduced)
        representatives = pca.inverse_transform(km.cluster_centers_)
        best = np.argmax(representatives, axis=1)
        return self._make_set(dataset, best, n_configs)
