"""Section III: configuration pruning techniques.

Five methods select a bounded set of kernel configurations to bundle:

* :class:`TopNPruner` — the naive baseline: most-frequent winners;
* :class:`KMeansPruner` — k-means over the normalized performance
  vectors, best config of each centroid;
* :class:`PCAKMeansPruner` — k-means in PCA-reduced space, centroids
  mapped back with the inverse transform;
* :class:`HDBSCANPruner` — density clustering, best config of each
  cluster medoid;
* :class:`DecisionTreePruner` — multi-output regression tree with a leaf
  budget; each leaf's mean vector is a representative.

All implement the :class:`Pruner` protocol and are scored by
:func:`achievable_performance` (geometric-mean best-in-set performance),
reproducing Figure 4 via :func:`sweep_pruners`.
"""

from repro.core.pruning.base import PrunedSet, Pruner
from repro.core.pruning.topn import TopNPruner
from repro.core.pruning.kmeans import KMeansPruner
from repro.core.pruning.pca_kmeans import PCAKMeansPruner
from repro.core.pruning.hdbscan import HDBSCANPruner
from repro.core.pruning.decision_tree import DecisionTreePruner
from repro.core.pruning.evaluate import (
    achievable_performance,
    default_pruners,
    make_pruner,
    sweep_pruners,
)

__all__ = [
    "DecisionTreePruner",
    "HDBSCANPruner",
    "KMeansPruner",
    "PCAKMeansPruner",
    "PrunedSet",
    "Pruner",
    "TopNPruner",
    "achievable_performance",
    "default_pruners",
    "make_pruner",
    "sweep_pruners",
]
