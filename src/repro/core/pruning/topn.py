"""The naive baseline: keep the N most frequently optimal configurations.

"The simplest pruning method is choosing the top N configurations that
obtained optimal results."  Ties on win count are broken by mean
normalized performance, so the selection is deterministic and the
baseline is as strong as the naive method can honestly be.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import PerformanceDataset
from repro.core.pruning.base import PrunedSet, Pruner

__all__ = ["TopNPruner"]


class TopNPruner(Pruner):
    name = "top-n"

    def select(self, dataset: PerformanceDataset, n_configs: int) -> PrunedSet:
        wins = dataset.win_counts().astype(np.float64)
        mean_perf = dataset.normalized().mean(axis=0)
        # Sort by wins, then mean performance; argsort is ascending, so
        # negate.  lexsort's last key is primary.
        order = np.lexsort((-mean_perf, -wins))
        return self._make_set(dataset, order[:n_configs], n_configs)
