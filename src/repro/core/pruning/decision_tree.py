"""Decision-tree pruning.

"Finally we used a decision tree to do regression on the dataset that
maps a set of matrix sizes to a vector of the expected normalized
performance for each configuration.  Limiting the number of leaf nodes in
the decision tree ensures the tree only produces a restricted number of
such vectors which are used as the cluster representatives."

Unlike the clustering pruners this one learns the *mapping from features
to behaviour*, which is why it transfers best to unseen shapes (Fig 4) —
its representatives are conditioned on the features a runtime selector
will actually see.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import PerformanceDataset
from repro.core.pruning.base import PrunedSet, Pruner
from repro.ml.tree.regressor import DecisionTreeRegressor

__all__ = ["DecisionTreePruner"]


class DecisionTreePruner(Pruner):
    name = "decision tree"

    def __init__(self, *, min_samples_leaf: int = 2):
        self.min_samples_leaf = min_samples_leaf

    def select(self, dataset: PerformanceDataset, n_configs: int) -> PrunedSet:
        data = dataset.normalized()
        features = dataset.features()
        if n_configs < 2:
            # A leaf budget below 2 cannot split; degenerate to the global
            # mean representative.
            best = [int(np.argmax(data.mean(axis=0)))]
            return self._make_set(dataset, best, n_configs)
        tree = DecisionTreeRegressor(
            max_leaf_nodes=n_configs,
            min_samples_leaf=self.min_samples_leaf,
        ).fit(features, data)
        representatives = tree.leaf_representatives()
        best = np.argmax(representatives, axis=1)
        self.last_tree_ = tree  # kept for deployment/export experiments
        return self._make_set(dataset, best, n_configs)
