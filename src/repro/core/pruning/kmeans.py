"""k-means pruning over normalized performance vectors.

Each shape contributes a 640-dimensional performance vector; k-means
groups shapes with similar performance *behaviour*, the cluster centroids
act as representatives, and the best configuration of each representative
is bundled.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import PerformanceDataset
from repro.core.pruning.base import PrunedSet, Pruner
from repro.ml.kmeans import KMeans

__all__ = ["KMeansPruner"]


class KMeansPruner(Pruner):
    name = "k-means"

    def __init__(self, *, n_init: int = 10, random_state: int = 0):
        self.n_init = n_init
        self.random_state = random_state

    def select(self, dataset: PerformanceDataset, n_configs: int) -> PrunedSet:
        data = dataset.normalized()
        k = min(n_configs, data.shape[0])
        km = KMeans(
            n_clusters=k, n_init=self.n_init, random_state=self.random_state
        ).fit(data)
        representatives = km.cluster_centers_
        best = np.argmax(representatives, axis=1)
        return self._make_set(dataset, best, n_configs)
