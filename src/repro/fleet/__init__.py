"""Heterogeneous multi-device selection fleet.

The source paper trains one selector for one device; its follow-up
("Performance portability through machine learning guided kernel
selection in SYCL libraries") shows the pipeline must re-run per device
to stay near-optimal.  This package automates that at fleet scale:

* :mod:`~repro.fleet.profile` — the :class:`DeviceProfile` registry
  binding fleet-wide device ids to a simulated
  :class:`~repro.sycl.device.DeviceSpec` plus
  :class:`~repro.perfmodel.params.PerfModelParams` calibration (R9 Nano
  baseline + synthetic variants spanning compute, bandwidth and launch
  overhead);
* :mod:`~repro.fleet.pipeline` — the fleet DAG fanning the
  sweep -> dataset -> split -> prune -> train -> eval chain out per
  profile, each branch rooted at a content-addressed ``profile``
  artifact so adding or editing one device re-runs only that branch;
* :mod:`~repro.fleet.serve` — :func:`router_from_store`, assembling a
  :class:`~repro.serving.router.FleetRouter` that serves every device's
  selector artifact with cross-device fallback and perf-aware dispatch.

``repro fleet build|route|stats|devices`` exposes the same flow on the
command line.
"""

from repro.fleet.pipeline import (
    FLEET_STAGES,
    FleetPipelineConfig,
    FleetRun,
    fleet_fingerprints,
    fleet_params,
    fleet_pipeline,
    parse_stage_name,
    run_fleet_pipeline,
    stage_name,
)
from repro.fleet.profile import (
    DEFAULT_FLEET,
    DeviceProfile,
    available_profiles,
    fleet_profiles,
    get_profile,
    register_profile,
)
from repro.fleet.serve import router_from_store

__all__ = [
    "DEFAULT_FLEET",
    "DeviceProfile",
    "FLEET_STAGES",
    "FleetPipelineConfig",
    "FleetRun",
    "available_profiles",
    "fleet_fingerprints",
    "fleet_params",
    "fleet_pipeline",
    "fleet_profiles",
    "get_profile",
    "parse_stage_name",
    "register_profile",
    "router_from_store",
    "run_fleet_pipeline",
    "stage_name",
]
