"""Device profiles: the fleet-wide identity of one selection target.

A :class:`DeviceProfile` binds a fleet device id to everything the
per-device pipeline needs to produce a selector for that device: the
simulated :class:`~repro.sycl.device.DeviceSpec` and the
:class:`~repro.perfmodel.params.PerfModelParams` calibration the
benchmark sweep runs under.  The profile is itself a pipeline artifact
(codec ``profile``), so every downstream artifact of a device — sweep,
dataset, pruned set, trained selector — fingerprints through it: change
a device's spec or model constants and exactly that device's branch of
the fleet DAG re-runs.

The built-in registry seeds the paper's R9 Nano baseline plus synthetic
profiles that vary the three axes the routing layer cares about —
compute-unit count, DRAM bandwidth, and kernel launch overhead — so a
heterogeneous fleet exists out of the box (Lawson's follow-up shows the
selection pipeline must re-run per device to stay near-optimal; the
fleet DAG automates exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.perfmodel.model import GemmPerfModel
from repro.perfmodel.params import PerfModelParams
from repro.sycl.device import Device, DeviceSpec

__all__ = [
    "DEFAULT_FLEET",
    "DeviceProfile",
    "available_profiles",
    "fleet_profiles",
    "get_profile",
    "register_profile",
]

#: Characters that would collide with fleet stage names (``stage@id``)
#: or artifact display ids (``stage:prefix``).
_FORBIDDEN_ID_CHARS = "@:/ \t\n"


@dataclass(frozen=True)
class DeviceProfile:
    """One fleet device: id, simulated hardware, and model calibration."""

    device_id: str
    spec: DeviceSpec
    model_params: PerfModelParams = field(default_factory=PerfModelParams)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.device_id:
            raise ValueError("device_id must be non-empty")
        bad = [c for c in _FORBIDDEN_ID_CHARS if c in self.device_id]
        if bad:
            raise ValueError(
                f"device_id {self.device_id!r} contains reserved "
                f"character(s) {bad} (ids appear in stage names and "
                "artifact display ids)"
            )

    def device(self) -> Device:
        """A :class:`~repro.sycl.device.Device` handle for the profile."""
        return Device(self.spec)

    def perf_model(self, *, seed: int = 2020) -> GemmPerfModel:
        """The analytical model the routing layer estimates with."""
        return GemmPerfModel(self.spec, params=self.model_params, seed=seed)

    def __repr__(self) -> str:
        return (
            f"DeviceProfile({self.device_id!r}, "
            f"{self.spec.compute_units} CUs, "
            f"{self.spec.dram_bandwidth_gbps:.0f} GB/s, "
            f"launch {self.spec.kernel_launch_overhead_us:.0f}us)"
        )


_REGISTRY: Dict[str, DeviceProfile] = {}


def register_profile(
    profile: DeviceProfile, *, replace: bool = False
) -> DeviceProfile:
    """Add a profile to the fleet registry.

    Re-registering an id is refused unless ``replace=True`` — silently
    shadowing a profile would change every fingerprint derived from it.
    """
    if not replace and profile.device_id in _REGISTRY:
        raise ValueError(
            f"device profile {profile.device_id!r} is already registered "
            "(pass replace=True to overwrite)"
        )
    _REGISTRY[profile.device_id] = profile
    return profile


def get_profile(device_id: str) -> DeviceProfile:
    try:
        return _REGISTRY[device_id]
    except KeyError:
        raise ValueError(
            f"unknown device profile {device_id!r}; "
            f"known: {sorted(_REGISTRY)}"
        ) from None


def available_profiles() -> List[str]:
    return sorted(_REGISTRY)


def fleet_profiles(
    device_ids: Optional[Tuple[str, ...]] = None,
) -> Tuple[DeviceProfile, ...]:
    """Resolve device ids (default: the built-in fleet) to profiles."""
    ids = DEFAULT_FLEET if device_ids is None else tuple(device_ids)
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate device ids in fleet: {list(ids)}")
    return tuple(get_profile(device_id) for device_id in ids)


def _register_builtin_profiles() -> None:
    nano = Device.from_preset("r9-nano").spec
    register_profile(
        DeviceProfile(
            device_id="r9-nano",
            spec=nano,
            description="The paper's benchmark platform (baseline).",
        )
    )
    # Synthetic variants span the axes that change which kernel wins:
    # raw compute, memory bandwidth, and per-launch fixed cost.
    register_profile(
        DeviceProfile(
            device_id="compute-heavy",
            spec=nano.with_overrides(
                name="Synthetic compute-heavy GPU (simulated)",
                compute_units=96,
                clock_ghz=1.3,
                dram_bandwidth_gbps=384.0,
            ),
            description=(
                "1.5x the CUs at a higher clock on 3/4 the bandwidth: "
                "compute-rich, bandwidth-starved."
            ),
        )
    )
    register_profile(
        DeviceProfile(
            device_id="bandwidth-lean",
            spec=nano.with_overrides(
                name="Synthetic bandwidth-lean GPU (simulated)",
                compute_units=32,
                dram_bandwidth_gbps=128.0,
                l2_bytes=1024 * 1024,
                sustained_bandwidth_efficiency=0.70,
            ),
            model_params=PerfModelParams(alignment_penalty=0.20),
            description=(
                "Half the CUs on a quarter of the bandwidth; stronger "
                "alignment quirks."
            ),
        )
    )
    register_profile(
        DeviceProfile(
            device_id="latency-bound",
            spec=nano.with_overrides(
                name="Synthetic latency-bound GPU (simulated)",
                compute_units=48,
                kernel_launch_overhead_us=45.0,
            ),
            model_params=PerfModelParams(host_overhead_s=8.0e-6),
            description=(
                "Near-baseline throughput behind a 45us launch cost: "
                "small shapes pay dearly."
            ),
        )
    )


_register_builtin_profiles()

#: The device ids a fleet is built from when none are named.
DEFAULT_FLEET: Tuple[str, ...] = (
    "r9-nano",
    "compute-heavy",
    "bandwidth-lean",
    "latency-bound",
)
