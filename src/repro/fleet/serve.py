"""Wiring a built fleet into a serving :class:`FleetRouter`.

The fleet pipeline leaves one trained-selector artifact per device in
the store; :func:`router_from_store` resolves each device's ``train``
fingerprint for a :class:`FleetPipelineConfig`, fronts it with a
:class:`~repro.serving.service.SelectionService` (provenance attached),
and registers it on a router together with the device's performance
model — so perf-aware dispatch estimates with exactly the calibration
the device's dataset was generated under.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.fleet.pipeline import (
    FleetPipelineConfig,
    fleet_fingerprints,
    stage_name,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer
from repro.pipeline.store import ArtifactStore
from repro.serving.router import FleetRouter
from repro.serving.service import SelectionService

__all__ = ["router_from_store"]


def router_from_store(
    store: ArtifactStore,
    config: Optional[FleetPipelineConfig] = None,
    *,
    default_policy: str = "round-robin",
    service_kwargs: Optional[Dict[str, Any]] = None,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    policy_wrapper: Optional[Callable[[str, Any], Any]] = None,
) -> FleetRouter:
    """A router serving every device selector a fleet build produced.

    Each device's service gets the first configuration of the device's
    own pruned library as its ``fallback`` (the "never worse than pick
    any shipped kernel" guarantee), unless ``service_kwargs`` overrides
    it.  Raises :class:`KeyError` naming the device and stage when a
    selector artifact is missing — run the fleet build first.

    ``registry``/``tracer`` are shared by the router and every device
    service (each labelled ``service=<device_id>``), so one obs snapshot
    covers the whole fleet.  ``policy_wrapper`` — called as
    ``policy_wrapper(device_id, policy)`` — may replace each device's
    policy before it is served; fault-injection demos wrap policies in a
    :class:`~repro.testing.faulty.FaultyPolicy` this way.
    """
    config = config or FleetPipelineConfig()
    fingerprints = fleet_fingerprints(config)
    router = FleetRouter(
        default_policy=default_policy, registry=registry, tracer=tracer
    )
    kwargs = dict(service_kwargs or {})
    if registry is not None:
        kwargs.setdefault("registry", registry)
    for profile in config.profiles():
        did = profile.device_id
        train_name = stage_name("train", did)
        artifact = store.get(fingerprints[train_name])
        if artifact is None:
            raise KeyError(
                f"no trained selector for device {did!r} (stage "
                f"{train_name}, fingerprint "
                f"{fingerprints[train_name][:12]}...) in {store!r}; "
                "run the fleet build first"
            )
        deployed = artifact.value
        policy = deployed
        if policy_wrapper is not None:
            policy = policy_wrapper(did, deployed)
        service_args = dict(kwargs)
        service_args.setdefault("fallback", deployed.library.configs[0])
        service_args.setdefault("name", did)
        service = SelectionService(
            policy, provenance=artifact.provenance, **service_args
        )
        router.add_device(
            did,
            service,
            model=profile.perf_model(seed=config.runner.seed),
            library=tuple(deployed.library.configs),
        )
    return router
