"""The fleet DAG: the paper's artifact chain fanned out per device.

Each device profile gets its own branch of the staged pipeline::

    profile@<id> -> sweep@<id> -> dataset@<id> -> split@<id>
                                     -> prune@<id> -> train@<id> -> eval@<id>

The branch roots at a ``profile`` artifact holding the
:class:`~repro.fleet.profile.DeviceProfile` itself, so every per-device
artifact fingerprints through the device's spec and model calibration.
Branches share no artifacts: adding a fifth profile to a built fleet
runs exactly that profile's seven stages and reuses the other four
branches as cache hits.

The stage functions here are thin module-level wrappers over the
single-device stage functions in :mod:`repro.core.dataset` and
:mod:`repro.core.deploy` — inputs arrive keyed by suffixed stage names
(``sweep@r9-nano``) and are re-keyed to the canonical names the core
stages expect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.bench.runner import BenchmarkRunner, RunnerConfig
from repro.core.dataset import (
    DEFAULT_NETWORKS,
    PerformanceDataset,
    split_stage,
)
from repro.core.deploy import eval_stage, prune_stage, train_stage
from repro.fleet.profile import DeviceProfile, fleet_profiles
from repro.kernels.params import KernelConfig
from repro.pipeline.artifact import Artifact
from repro.pipeline.executor import PipelineExecutor, PipelineRun
from repro.pipeline.stage import Pipeline, Stage
from repro.pipeline.store import ArtifactStore
from repro.workloads.extract import extract_dataset_shapes

__all__ = [
    "FLEET_STAGES",
    "FleetPipelineConfig",
    "FleetRun",
    "fleet_fingerprints",
    "fleet_params",
    "fleet_pipeline",
    "parse_stage_name",
    "run_fleet_pipeline",
    "stage_name",
]

#: Per-device stage kinds, in branch order.
FLEET_STAGES: Tuple[str, ...] = (
    "profile",
    "sweep",
    "dataset",
    "split",
    "prune",
    "train",
    "eval",
)


def stage_name(stage: str, device_id: str) -> str:
    """The fleet DAG name of one device's stage: ``stage@device_id``."""
    return f"{stage}@{device_id}"


def parse_stage_name(name: str) -> Tuple[str, str]:
    """Split ``stage@device_id`` back into its parts."""
    stage, sep, device_id = name.partition("@")
    if not sep or not device_id:
        raise ValueError(f"{name!r} is not a fleet stage name (stage@device)")
    return stage, device_id


def _canonical(inputs: Mapping[str, Any]) -> Dict[str, Any]:
    """Re-key suffixed input names to the canonical single-device names."""
    return {name.partition("@")[0]: value for name, value in inputs.items()}


# -- per-device stage functions (module-level for process-pool pickling) ------


def profile_stage(inputs, params, options) -> DeviceProfile:
    """Pipeline stage: the device profile itself, as a root artifact."""
    return params["profile"]


def fleet_sweep_stage(inputs, params, options):
    """Pipeline stage: benchmark sweep on one profile's device.

    The device spec and model constants come from the upstream profile
    artifact (not the params), so the sweep's fingerprint tracks the
    profile's content.  ``configs`` optionally restricts the swept
    configuration space (None = the full 640).
    """
    profile: DeviceProfile = _canonical(inputs)["profile"]
    shapes, _ = extract_dataset_shapes(networks=tuple(params["networks"]))
    runner = BenchmarkRunner(
        profile.device(),
        configs=params.get("configs"),
        runner_config=params["runner"],
        model_params=profile.model_params,
    )
    return runner.run(shapes, max_workers=options.get("max_workers", 1))


def fleet_dataset_stage(inputs, params, options) -> PerformanceDataset:
    return PerformanceDataset.from_benchmark(_canonical(inputs)["sweep"])


def fleet_split_stage(inputs, params, options):
    return split_stage(_canonical(inputs), params, options)


def fleet_prune_stage(inputs, params, options):
    return prune_stage(_canonical(inputs), params, options)


def fleet_train_stage(inputs, params, options):
    return train_stage(_canonical(inputs), params, options)


def fleet_eval_stage(inputs, params, options):
    return eval_stage(_canonical(inputs), params, options)


# -- configuration ------------------------------------------------------------


@dataclass(frozen=True)
class FleetPipelineConfig:
    """Every fingerprinted knob of the fleet pipeline in one place.

    ``device_ids`` name registered profiles (see
    :mod:`repro.fleet.profile`); selection/pruning knobs apply uniformly
    across devices.  ``configs`` restricts the swept configuration space
    (None = the full 640) — tests and CI use reduced spaces to keep the
    per-device sweeps fast.
    """

    device_ids: Optional[Tuple[str, ...]] = None
    networks: Tuple[str, ...] = DEFAULT_NETWORKS
    runner: RunnerConfig = field(default_factory=RunnerConfig)
    configs: Optional[Tuple[KernelConfig, ...]] = None
    test_size: float = 0.2
    split_seed: int = 0
    pruner: str = "decision tree"
    budget: int = 8
    classifier: str = "DecisionTree"
    random_state: int = 0

    def profiles(self) -> Tuple[DeviceProfile, ...]:
        return fleet_profiles(self.device_ids)


def fleet_pipeline(config: Optional[FleetPipelineConfig] = None) -> Pipeline:
    """The fleet DAG: one independent branch per device profile."""
    config = config or FleetPipelineConfig()
    pipeline = Pipeline()
    for profile in config.profiles():
        did = profile.device_id
        pipeline.add(
            Stage(stage_name("profile", did), profile_stage, (), codec="profile")
        )
        pipeline.add(
            Stage(
                stage_name("sweep", did),
                fleet_sweep_stage,
                (stage_name("profile", did),),
                codec="bench-result",
            )
        )
        pipeline.add(
            Stage(
                stage_name("dataset", did),
                fleet_dataset_stage,
                (stage_name("sweep", did),),
                codec="dataset",
            )
        )
        pipeline.add(
            Stage(
                stage_name("split", did),
                fleet_split_stage,
                (stage_name("dataset", did),),
                codec="split",
            )
        )
        pipeline.add(
            Stage(
                stage_name("prune", did),
                fleet_prune_stage,
                (stage_name("split", did),),
            )
        )
        pipeline.add(
            Stage(
                stage_name("train", did),
                fleet_train_stage,
                (stage_name("split", did), stage_name("prune", did)),
                codec="selector",
            )
        )
        pipeline.add(
            Stage(
                stage_name("eval", did),
                fleet_eval_stage,
                (stage_name("split", did), stage_name("train", did)),
            )
        )
    return pipeline


def fleet_params(
    config: Optional[FleetPipelineConfig] = None,
) -> Dict[str, Any]:
    """Per-stage parameter assignment for :func:`fleet_pipeline`."""
    config = config or FleetPipelineConfig()
    params: Dict[str, Any] = {}
    for profile in config.profiles():
        did = profile.device_id
        params[stage_name("profile", did)] = {"profile": profile}
        params[stage_name("sweep", did)] = {
            "networks": tuple(config.networks),
            "runner": config.runner,
            "configs": config.configs,
        }
        params[stage_name("split", did)] = {
            "test_size": config.test_size,
            "split_seed": config.split_seed,
        }
        params[stage_name("prune", did)] = {
            "pruner": config.pruner,
            "budget": config.budget,
            "random_state": config.random_state,
        }
        params[stage_name("train", did)] = {
            "classifier": config.classifier,
            "random_state": config.random_state,
        }
    return params


def fleet_fingerprints(
    config: Optional[FleetPipelineConfig] = None,
) -> Dict[str, str]:
    """Content address of every fleet stage under ``config``."""
    config = config or FleetPipelineConfig()
    return fleet_pipeline(config).fingerprints(fleet_params(config))


@dataclass(frozen=True)
class FleetRun:
    """One fleet build: the underlying run plus per-device accessors."""

    run: PipelineRun
    device_ids: Tuple[str, ...]

    @property
    def stats(self):
        return self.run.stats

    def artifact(self, stage: str, device_id: str) -> Artifact:
        return self.run.artifacts[stage_name(stage, device_id)]

    def value(self, stage: str, device_id: str) -> Any:
        return self.artifact(stage, device_id).value

    def selectors(self) -> Dict[str, Any]:
        """The trained :class:`DeployedSelector` of every device."""
        return {did: self.value("train", did) for did in self.device_ids}


def run_fleet_pipeline(
    store: ArtifactStore,
    config: Optional[FleetPipelineConfig] = None,
    *,
    max_workers: int = 1,
    force: bool = False,
    registry=None,
    tracer=None,
) -> FleetRun:
    """Build (or incrementally resume) every device's selector artifact.

    ``registry``/``tracer`` are forwarded to the underlying
    :class:`PipelineExecutor`, so the build's per-stage spans and cache
    counters land in the same obs snapshot as later serving traffic.
    """
    config = config or FleetPipelineConfig()
    executor = PipelineExecutor(
        store, max_workers=max_workers, registry=registry, tracer=tracer
    )
    run = executor.run(
        fleet_pipeline(config), fleet_params(config), force=force
    )
    return FleetRun(
        run=run,
        device_ids=tuple(p.device_id for p in config.profiles()),
    )
