"""The metrics registry: named, labelled metrics with one shared sink.

A :class:`MetricsRegistry` hands out :class:`~repro.obs.metrics.Counter`
/ :class:`~repro.obs.metrics.Gauge` / :class:`~repro.obs.metrics.Histogram`
instances keyed by ``(name, labels)`` — asking twice for the same key
returns the same instance, so independent components (a serving cache, a
fleet router, a pipeline executor) share one registry and one exported
snapshot.  :data:`NULL_REGISTRY` is the uninstrumented variant: every
metric it returns is a no-op, which is what the obs-overhead benchmark
measures against.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Type

from repro.obs.metrics import Counter, Gauge, Histogram

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "default_registry",
]

_LabelKey = Tuple[Tuple[str, str], ...]
_Key = Tuple[str, _LabelKey]

#: Optional label mapping attached to a metric (values are stringified).
Labels = Optional[Mapping[str, Any]]


def _label_key(labels: Labels) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Thread-safe get-or-create store of named, labelled metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[_Key, Any] = {}

    def _get(self, cls: Type[Any], name: str, labels: Labels, **kwargs: Any) -> Any:
        if not name:
            raise ValueError("metric name must be non-empty")
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r}{dict(key[1])!r} is a "
                        f"{type(existing).__name__}, not a {cls.__name__}"
                    )
                return existing
            metric = cls(**kwargs)
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, labels: Labels = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: Labels = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Labels = None,
        *,
        bounds: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    def collect(self) -> Tuple[Tuple[str, Dict[str, str], Any], ...]:
        """Every registered metric as ``(name, labels, metric)``, sorted."""
        with self._lock:
            items = sorted(self._metrics.items())
        return tuple(
            (name, dict(label_key), metric) for (name, label_key), metric in items
        )

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of every metric in the registry."""
        counters: List[Dict[str, Any]] = []
        gauges: List[Dict[str, Any]] = []
        histograms: List[Dict[str, Any]] = []
        for name, labels, metric in self.collect():
            entry = {"name": name, "labels": labels}
            entry.update(metric.snapshot())
            if isinstance(metric, Counter):
                counters.append(entry)
            elif isinstance(metric, Gauge):
                gauges.append(entry)
            else:
                histograms.append(entry)
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` document into this registry.

        The inverse of :meth:`snapshot`: every entry is re-keyed on
        ``(name, labels)`` through the usual get-or-create path, so
        merging into an empty registry reproduces the source exactly and
        merging worker deltas into a shared registry yields exact
        fleet-wide totals (counters and histogram buckets add under each
        metric's own lock; gauges adopt the incoming value).  A name
        already registered as a different metric kind raises the same
        ``TypeError`` as the get-or-create path.
        """
        for entry in snapshot.get("counters", ()):
            self.counter(entry["name"], entry.get("labels")).merge_snapshot(entry)
        for entry in snapshot.get("gauges", ()):
            self.gauge(entry["name"], entry.get("labels")).merge_snapshot(entry)
        for entry in snapshot.get("histograms", ()):
            metric = self.histogram(
                entry["name"],
                entry.get("labels"),
                bounds=tuple(entry["bounds"]),
            )
            metric.merge_snapshot(entry)

    def reset(self) -> None:
        """Zero every registered metric (instances stay registered)."""
        for _, _, metric in self.collect():
            metric.reset()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} metrics)"


class _NullCounter(Counter):
    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def inc(self, n: float = 1.0) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float) -> None:
        pass

    def observe_n(self, value: float, n: int) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """A registry whose metrics are all no-ops.

    Components built on it pay no instrumentation cost and report empty
    snapshots; the obs-overhead benchmark serves traffic through a
    :data:`NULL_REGISTRY` service as its uninstrumented baseline.
    """

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter()
        self._gauge = _NullGauge()
        self._histogram = _NullHistogram()

    def counter(self, name: str, labels: Labels = None) -> Counter:
        return self._counter

    def gauge(self, name: str, labels: Labels = None) -> Gauge:
        return self._gauge

    def histogram(
        self,
        name: str,
        labels: Labels = None,
        *,
        bounds: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._histogram

    def collect(self) -> Tuple[Tuple[str, Dict[str, str], Any], ...]:
        return ()

    def __repr__(self) -> str:
        return "NullRegistry()"


#: Shared uninstrumented registry (all metrics are no-ops).
NULL_REGISTRY = NullRegistry()

_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide default registry (used by the CLI demos)."""
    return _DEFAULT_REGISTRY
