"""Lightweight span tracing: nested timed spans with tags.

``with tracer.trace("pipeline.stage", stage="sweep"):`` times a block;
spans opened inside it become children, so a fleet reroute that cascades
across devices shows up as a nested tree.  Finished root spans land in a
bounded ring buffer and export as plain JSON-able dicts
(:meth:`Tracer.export` / :meth:`SpanRecord.from_dict` round-trip).

Each thread has its own active-span stack, so concurrent request paths
never interleave their trees; completed roots from every thread share
one buffer.  :data:`NULL_TRACER` drops everything — the zero-overhead
default for hot paths that only want tracing when a demo or test asks.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = ["NullTracer", "NULL_TRACER", "SpanRecord", "Tracer"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a named, tagged duration with child spans.

    ``start_s`` is a monotonic (``perf_counter``) timestamp, so only
    differences between spans of one process are meaningful.
    """

    name: str
    start_s: float
    duration_s: float
    tags: Mapping[str, Any] = field(default_factory=dict)
    children: Tuple["SpanRecord", ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "tags": dict(self.tags),
            "children": [child.to_dict() for child in self.children],
        }

    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "SpanRecord":
        return SpanRecord(
            name=str(doc["name"]),
            start_s=float(doc["start_s"]),
            duration_s=float(doc["duration_s"]),
            tags=dict(doc.get("tags", {})),
            children=tuple(
                SpanRecord.from_dict(child) for child in doc.get("children", ())
            ),
        )

    def walk(self) -> Iterator["SpanRecord"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"SpanRecord({self.name!r}, {self.duration_s * 1e3:.2f}ms, "
            f"{len(self.children)} children)"
        )


class _ActiveSpan:
    """Mutable in-flight span; frozen into a SpanRecord on exit."""

    __slots__ = ("name", "tags", "start", "children")

    def __init__(self, name: str, tags: Dict[str, Any], start: float) -> None:
        self.name = name
        self.tags = tags
        self.start = start
        self.children: List[SpanRecord] = []


class Tracer:
    """Produces nested :class:`SpanRecord` trees from timed blocks.

    ``max_spans`` bounds the retained ring of finished *root* spans
    (children live inside their root); the oldest roots fall off first.
    """

    def __init__(self, max_spans: int = 4096) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self._max_spans = max_spans
        self._finished: Deque[SpanRecord] = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def max_spans(self) -> int:
        return self._max_spans

    def _stack(self) -> List[_ActiveSpan]:
        stack: Optional[List[_ActiveSpan]] = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def trace(self, name: str, **tags: Any) -> Iterator[_ActiveSpan]:
        """Time a block as a span; nested calls become child spans.

        The yielded handle's ``tags`` dict may be updated inside the
        block (e.g. to tag an outcome discovered mid-span).
        """
        stack = self._stack()
        active = _ActiveSpan(name, dict(tags), time.perf_counter())
        stack.append(active)
        try:
            yield active
        finally:
            duration = time.perf_counter() - active.start
            stack.pop()
            record = SpanRecord(
                name=active.name,
                start_s=active.start,
                duration_s=duration,
                tags=dict(active.tags),
                children=tuple(active.children),
            )
            self._attach(record, stack)

    def record(
        self,
        name: str,
        duration_s: float,
        *,
        tags: Optional[Mapping[str, Any]] = None,
        start_s: Optional[float] = None,
    ) -> SpanRecord:
        """Add an already-timed span (e.g. measured in a worker process).

        Attaches to the calling thread's current open span, or to the
        root buffer when none is open.  Returns the record so callers
        can build thin views over exactly the spans they emitted.
        """
        if duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {duration_s}")
        start = time.perf_counter() - duration_s if start_s is None else start_s
        record = SpanRecord(
            name=name,
            start_s=start,
            duration_s=duration_s,
            tags=dict(tags or {}),
            children=(),
        )
        self._attach(record, self._stack())
        return record

    def _attach(self, record: SpanRecord, stack: List[_ActiveSpan]) -> None:
        if stack:
            stack[-1].children.append(record)
        else:
            with self._lock:
                self._finished.append(record)

    def spans(self) -> Tuple[SpanRecord, ...]:
        """Finished root spans, oldest first."""
        with self._lock:
            return tuple(self._finished)

    def find(self, name: str) -> Tuple[SpanRecord, ...]:
        """Every retained span (at any depth) with the given name."""
        return tuple(s for root in self.spans() for s in root.walk() if s.name == name)

    def export(self) -> List[Dict[str, Any]]:
        """Finished root spans as JSON-able dicts."""
        return [span.to_dict() for span in self.spans()]

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def __repr__(self) -> str:
        return f"Tracer({len(self.spans())}/{self._max_spans} root spans)"


class NullTracer(Tracer):
    """A tracer that drops every span (still times, never retains)."""

    def _attach(self, record: SpanRecord, stack: List[_ActiveSpan]) -> None:
        pass


#: Shared drop-everything tracer.
NULL_TRACER = NullTracer()
