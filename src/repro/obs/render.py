"""Rendering and export of observability snapshots.

An *obs document* is the JSON-able union of a registry snapshot and a
tracer export — what ``repro fleet route --obs-export`` writes and what
``repro obs dump|summary`` reads back (or builds from the in-process
default registry).  ``render_dump`` prints everything, bucket bars and
span trees included; ``render_summary`` condenses each histogram to its
count/mean/p50/p95/max line and each span name to an aggregate.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.obs.metrics import histogram_quantile
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["OBS_SCHEMA", "obs_doc", "render_dump", "render_summary"]

#: Schema tag stamped on exported obs documents.
OBS_SCHEMA = "repro.obs/v1"

_BAR_WIDTH = 32


def obs_doc(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None
) -> Dict[str, Any]:
    """A JSON-serializable document holding metrics and spans."""
    return {
        "schema": OBS_SCHEMA,
        "metrics": registry.snapshot(),
        "spans": [] if tracer is None else tracer.export(),
    }


def _check_doc(doc: Mapping[str, Any]) -> None:
    schema = doc.get("schema")
    if schema != OBS_SCHEMA:
        raise ValueError(f"not an obs document: schema {schema!r} != {OBS_SCHEMA!r}")


def _label_suffix(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _metric_id(entry: Mapping[str, Any]) -> str:
    return f"{entry['name']}{_label_suffix(entry.get('labels', {}))}"


def _seconds(value: float) -> str:
    """Humanise a seconds quantity at microsecond granularity."""
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.1f}us"


def _histogram_line(entry: Mapping[str, Any]) -> str:
    count = int(entry.get("count", 0))
    if count == 0:
        return f"{_metric_id(entry):44s} (no observations)"
    bounds = entry["bounds"]
    counts = entry["counts"]
    mean = entry["sum"] / count
    minimum = float(entry.get("min", 0.0))
    maximum = float(entry.get("max", 0.0))
    p50 = histogram_quantile(bounds, counts, 0.5, minimum=minimum, maximum=maximum)
    p95 = histogram_quantile(bounds, counts, 0.95, minimum=minimum, maximum=maximum)
    return (
        f"{_metric_id(entry):44s} count {count:<9d} mean {_seconds(mean):>9s}  "
        f"p50 {_seconds(p50):>9s}  p95 {_seconds(p95):>9s}  "
        f"max {_seconds(maximum):>9s}"
    )


def _histogram_bars(entry: Mapping[str, Any]) -> List[str]:
    bounds = list(entry["bounds"])
    counts = list(entry["counts"])
    peak = max(counts)
    if peak == 0:
        return []
    lines: List[str] = []
    for i, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        edge = f"<= {_seconds(bounds[i])}" if i < len(bounds) else "overflow"
        bar = "#" * max(1, round(_BAR_WIDTH * bucket_count / peak))
        lines.append(f"    {edge:>12s}  {bar:<{_BAR_WIDTH}s} {bucket_count}")
    return lines


def _span_lines(span: Mapping[str, Any], depth: int = 0) -> List[str]:
    tags = span.get("tags", {})
    tag_text = f"  {_label_suffix(tags)}" if tags else ""
    lines = [
        f"  {'  ' * depth}{span['name']:{max(1, 40 - 2 * depth)}s} "
        f"{_seconds(float(span['duration_s'])):>9s}{tag_text}"
    ]
    for child in span.get("children", ()):
        lines.extend(_span_lines(child, depth + 1))
    return lines


def _span_aggregates(spans: Iterable[Mapping[str, Any]]) -> Dict[str, Dict[str, Any]]:
    aggregates: Dict[str, Dict[str, Any]] = {}
    stack = list(spans)
    while stack:
        span = stack.pop()
        entry = aggregates.setdefault(
            str(span["name"]), {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += float(span["duration_s"])
        entry["max_s"] = max(entry["max_s"], float(span["duration_s"]))
        stack.extend(span.get("children", ()))
    return aggregates


def render_dump(doc: Mapping[str, Any]) -> str:
    """Full text render: every metric, bucket bars, span trees."""
    _check_doc(doc)
    metrics = doc.get("metrics", {})
    lines: List[str] = []
    counters = metrics.get("counters", [])
    if counters:
        lines.append("counters:")
        for entry in counters:
            lines.append(f"  {_metric_id(entry):44s} {int(entry['value'])}")
    gauges = metrics.get("gauges", [])
    if gauges:
        lines.append("gauges:")
        for entry in gauges:
            lines.append(f"  {_metric_id(entry):44s} {entry['value']:g}")
    histograms = metrics.get("histograms", [])
    if histograms:
        lines.append("histograms:")
        for entry in histograms:
            lines.append(f"  {_histogram_line(entry)}")
            lines.extend(_histogram_bars(entry))
    spans = doc.get("spans", [])
    if spans:
        lines.append(f"spans ({len(spans)} roots):")
        for span in spans:
            lines.extend(_span_lines(span))
    if not lines:
        lines.append("(empty obs document: no metrics or spans recorded)")
    return "\n".join(lines)


def render_summary(doc: Mapping[str, Any]) -> str:
    """Condensed render: counters/gauges, histogram stat lines, span rollup."""
    _check_doc(doc)
    metrics = doc.get("metrics", {})
    lines: List[str] = []
    scalars: List[Mapping[str, Any]] = list(metrics.get("counters", []))
    scalars.extend(metrics.get("gauges", []))
    if scalars:
        lines.append("counters/gauges:")
        for entry in scalars:
            lines.append(f"  {_metric_id(entry):44s} {entry['value']:g}")
    histograms = metrics.get("histograms", [])
    if histograms:
        lines.append("latency histograms:")
        for entry in histograms:
            lines.append(f"  {_histogram_line(entry)}")
    spans = doc.get("spans", [])
    if spans:
        lines.append("spans:")
        aggregates = _span_aggregates(spans)
        for name in sorted(aggregates):
            entry = aggregates[name]
            mean = entry["total_s"] / entry["count"]
            lines.append(
                f"  {name:44s} count {entry['count']:<9d} "
                f"mean {_seconds(mean):>9s}  total {_seconds(entry['total_s']):>9s}  "
                f"max {_seconds(entry['max_s']):>9s}"
            )
    if not lines:
        lines.append("(empty obs document: no metrics or spans recorded)")
    return "\n".join(lines)
