"""repro.obs — unified metrics and tracing for the whole system.

One dependency-free layer replaces the per-subsystem stat islands: the
serving cache, the fleet router and the pipeline executor all write the
same :class:`Counter` / :class:`Gauge` / :class:`Histogram` primitives
into a shared :class:`MetricsRegistry` and emit :class:`Tracer` spans,
so a single exported document answers the paper's question — is runtime
kernel selection measurably negligible? — across every layer at once.

The legacy ``stats()`` snapshots (``ServiceStats``, ``FleetStats``,
``ExecutorStats``) are thin views computed from these metrics; nothing
is double-counted.
"""

from repro.obs.aggregate import SnapshotDeltaTracker
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    histogram_quantile,
)
from repro.obs.registry import (
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    default_registry,
)
from repro.obs.render import OBS_SCHEMA, obs_doc, render_dump, render_summary
from repro.obs.trace import NullTracer, NULL_TRACER, SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "OBS_SCHEMA",
    "SnapshotDeltaTracker",
    "SpanRecord",
    "Tracer",
    "default_registry",
    "histogram_quantile",
    "obs_doc",
    "render_dump",
    "render_summary",
]
