"""Cross-process metric aggregation: incremental snapshot shipping.

A worker process cannot share a :class:`~repro.obs.registry.MetricsRegistry`
with its parent, so it ships :meth:`~repro.obs.registry.MetricsRegistry.snapshot`
documents over its control pipe instead.  Re-sending cumulative
snapshots would double-count on every merge, so
:class:`SnapshotDeltaTracker` turns the cumulative registry state into
*increments*: each :meth:`~SnapshotDeltaTracker.delta` call reports only
what counters and histograms gained since the previous call (gauges are
state, not flow, and ship absolute).  The receiving side folds every
delta into one fleet-wide registry with
:meth:`~repro.obs.registry.MetricsRegistry.merge_snapshot`; because both
sides add under per-metric locks, the merged counter totals are exact no
matter how deltas interleave.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.obs.registry import MetricsRegistry

__all__ = ["SnapshotDeltaTracker"]

_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _entry_key(entry: Dict[str, Any]) -> _Key:
    return (entry["name"], tuple(sorted(entry.get("labels", {}).items())))


class SnapshotDeltaTracker:
    """Turns cumulative registry snapshots into mergeable increments.

    Not thread-safe: one tracker belongs to one shipping loop (the shard
    worker calls :meth:`delta` from its single request thread).
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._counter_last: Dict[_Key, int] = {}
        self._histogram_last: Dict[_Key, Tuple[Tuple[int, ...], int, float]] = {}

    def delta(self) -> Dict[str, Any]:
        """Everything the registry gained since the previous call.

        Counters and histograms report increments (entries with nothing
        new are omitted); gauges report their current value.  Histogram
        ``min``/``max`` stay absolute — cumulative extrema merge
        correctly on the receiving side, increments would not.
        """
        snap = self._registry.snapshot()
        counters: List[Dict[str, Any]] = []
        for entry in snap["counters"]:
            key = _entry_key(entry)
            gained = int(entry["value"]) - self._counter_last.get(key, 0)
            self._counter_last[key] = int(entry["value"])
            if gained:
                counters.append({**entry, "value": gained})
        histograms: List[Dict[str, Any]] = []
        for entry in snap["histograms"]:
            key = _entry_key(entry)
            empty = ((0,) * len(entry["counts"]), 0, 0.0)
            last_counts, last_count, last_sum = self._histogram_last.get(key, empty)
            counts = tuple(int(c) for c in entry["counts"])
            count = int(entry["count"])
            if len(last_counts) != len(counts):
                last_counts, last_count, last_sum = empty
            gained_counts = [a - b for a, b in zip(counts, last_counts)]
            gained_count = count - last_count
            self._histogram_last[key] = (counts, count, float(entry["sum"]))
            if gained_count:
                histograms.append(
                    {
                        **entry,
                        "counts": gained_counts,
                        "count": gained_count,
                        "sum": float(entry["sum"]) - last_sum,
                    }
                )
        return {
            "counters": counters,
            "gauges": snap["gauges"],
            "histograms": histograms,
        }
