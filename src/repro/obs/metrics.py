"""Metric primitives: counters, gauges and log-bucketed histograms.

Every metric is a small thread-safe value holder with no external
dependencies.  :data:`LATENCY_BUCKETS_S` provides the fixed log-spaced
bucket bounds (four per decade from 0.1 microseconds to 10 seconds) that
suit the microsecond-scale selection lookups the paper's "negligible
overhead" argument is about: a memo hit, a full decision-tree pass and a
pathological stall land in clearly separated buckets.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "histogram_quantile",
]

#: Upper bucket bounds (seconds) for latency histograms: log-spaced,
#: four buckets per decade, covering 1e-7 s .. 10 s.
LATENCY_BUCKETS_S: Tuple[float, ...] = tuple(
    10.0 ** (exponent / 4.0) for exponent in range(-28, 5)
)


def histogram_quantile(
    bounds: Sequence[float],
    counts: Sequence[int],
    q: float,
    *,
    minimum: float = 0.0,
    maximum: float = 0.0,
) -> float:
    """Estimate the ``q``-quantile of a bucketed distribution.

    ``counts`` has one entry per bound plus a final overflow bucket.
    The estimate interpolates linearly inside the bucket containing the
    target rank and is clamped to the observed ``[minimum, maximum]``
    range, so exact-at-the-edges values never extrapolate.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if len(counts) != len(bounds) + 1:
        raise ValueError(
            f"need {len(bounds) + 1} bucket counts for {len(bounds)} "
            f"bounds, got {len(counts)}"
        )
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0
    for i, bucket_count in enumerate(counts):
        cumulative += bucket_count
        if bucket_count and cumulative >= target:
            lo = bounds[i - 1] if i > 0 else 0.0
            hi = bounds[i] if i < len(bounds) else maximum
            inside = target - (cumulative - bucket_count)
            fraction = min(max(inside / bucket_count, 0.0), 1.0)
            value = lo + (hi - lo) * fraction
            return min(max(value, minimum), maximum)
    return maximum


class Counter:
    """A monotonically increasing integer count."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; cannot inc by {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` dict (or delta) into this counter."""
        self.inc(int(snapshot["value"]))

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A value that can go up, down, or be set outright."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is currently lower."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Adopt the snapshot's value (gauges carry state, not deltas)."""
        self.set(float(snapshot["value"]))

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class Histogram:
    """Fixed-bucket distribution with count, sum and observed extrema.

    ``bounds`` are inclusive upper edges in ascending order; a value
    ``v`` lands in the first bucket whose bound satisfies ``v <=
    bound``, with one extra overflow bucket past the last bound.  The
    default bounds are :data:`LATENCY_BUCKETS_S`.
    """

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        chosen = LATENCY_BUCKETS_S if bounds is None else tuple(bounds)
        if not chosen:
            raise ValueError("histogram needs at least one bucket bound")
        if list(chosen) != sorted(set(chosen)):
            raise ValueError(f"bounds must be strictly increasing, got {chosen}")
        self._bounds: Tuple[float, ...] = tuple(float(b) for b in chosen)
        self._counts = [0] * (len(self._bounds) + 1)
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min = 0.0
        self._max = 0.0

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    def observe(self, value: float) -> None:
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            if self._count == 0:
                self._min = value
                self._max = value
            else:
                self._min = min(self._min, value)
                self._max = max(self._max, value)
            self._count += 1
            self._sum += value

    def observe_n(self, value: float, n: int) -> None:
        """Record ``n`` observations of ``value`` in one update.

        The batched form of :meth:`observe` for callers that measure an
        aggregate (e.g. one timed batch of ``n`` lookups) but want the
        distribution weighted by the real event count: ``n`` lands in
        ``value``'s bucket, ``count`` grows by ``n`` and ``sum`` by
        ``n * value``, all under one lock acquisition.
        """
        if n < 0:
            raise ValueError(f"observation count must be >= 0, got {n}")
        if n == 0:
            return
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += n
            if self._count == 0:
                self._min = value
                self._max = value
            else:
                self._min = min(self._min, value)
                self._max = max(self._max, value)
            self._count += n
            self._sum += n * value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def minimum(self) -> float:
        with self._lock:
            return self._min

    @property
    def maximum(self) -> float:
        with self._lock:
            return self._max

    def bucket_counts(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(self._counts)

    def quantile(self, q: float) -> float:
        with self._lock:
            counts = tuple(self._counts)
            minimum = self._min
            maximum = self._max
        return histogram_quantile(
            self._bounds, counts, q, minimum=minimum, maximum=maximum
        )

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self._bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = 0.0
            self._max = 0.0

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "bounds": list(self._bounds),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` dict (or delta) into this histogram.

        Bucket counts, ``count`` and ``sum`` add; ``min``/``max`` merge
        (an incoming empty snapshot is a no-op, and a previously empty
        histogram adopts the incoming extrema outright so a zero
        placeholder never wins a ``min``).
        """
        bounds = tuple(float(b) for b in snapshot["bounds"])
        if bounds != self._bounds:
            raise ValueError(
                f"cannot merge histogram with bounds {bounds} into one "
                f"with bounds {self._bounds}"
            )
        counts = [int(c) for c in snapshot["counts"]]
        if len(counts) != len(self._counts):
            raise ValueError(
                f"need {len(self._counts)} bucket counts, got {len(counts)}"
            )
        count = int(snapshot["count"])
        if count == 0:
            return
        with self._lock:
            for index, bucket_count in enumerate(counts):
                self._counts[index] += bucket_count
            if self._count == 0:
                self._min = float(snapshot["min"])
                self._max = float(snapshot["max"])
            else:
                self._min = min(self._min, float(snapshot["min"]))
                self._max = max(self._max, float(snapshot["max"]))
            self._count += count
            self._sum += float(snapshot["sum"])

    def __repr__(self) -> str:
        return f"Histogram({self.count} observations, {len(self._bounds)} buckets)"
