"""In-order command queue with a simulated device timeline.

``submit`` executes the kernel functionally (host/NumPy) and *advances a
simulated clock* by the kernel's estimated device time, recording the
timestamps on the returned event.  The queue therefore yields profiling
data as if the kernels had run on the modelled device, while the actual
numerical results are exact.

Resource validation happens at submit time: work-group limits, register
pressure (a kernel whose per-lane register demand exceeds the device's
budget would spill on real hardware — we reject it, matching how SYCL-DNN
restricts its configuration space to non-spilling kernels).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.sycl.buffer import Accessor, Buffer
from repro.sycl.device import Device
from repro.sycl.event import Event
from repro.sycl.exceptions import DeviceError
from repro.sycl.kernel import Kernel
from repro.sycl.ndrange import NDRange

__all__ = ["Queue"]

ArgLike = Union[Accessor, Buffer]


class Queue:
    """An in-order queue bound to one device."""

    def __init__(self, device: Device, *, enable_profiling: bool = True):
        if not isinstance(device, Device):
            raise TypeError(f"device must be a Device, got {type(device).__name__}")
        self._device = device
        self._profiling = enable_profiling
        self._now_ns = 0
        self._submissions: List[Tuple[str, int, int]] = []
        self._failed: List[Tuple[str, str]] = []

    @property
    def device(self) -> Device:
        return self._device

    @property
    def profiling_enabled(self) -> bool:
        return self._profiling

    @property
    def device_time_ns(self) -> int:
        """Current position of the simulated device clock."""
        return self._now_ns

    @property
    def submission_log(self) -> List[Tuple[str, int, int]]:
        """(kernel name, start_ns, end_ns) for every completed submission.

        A failed submission never appears here, but it does not erase
        earlier entries either: after a mid-stream exception the log
        still surfaces every completed launch (see
        :attr:`failed_submissions` for the failures).
        """
        return list(self._submissions)

    @property
    def failed_submissions(self) -> List[Tuple[str, str]]:
        """(kernel name, error) for every submission that raised."""
        return list(self._failed)

    def submit(
        self,
        kernel: Kernel,
        ndrange: NDRange,
        args: Sequence[ArgLike],
        *,
        depends_on: Optional[Sequence[Event]] = None,
    ) -> Event:
        """Validate, execute and time one kernel launch.

        ``args`` may mix accessors and raw buffers; raw buffers are
        wrapped in ``READ_WRITE`` accessors for convenience.

        A submission that fails — validation or execution — is recorded
        in :attr:`failed_submissions` and re-raised with its accessors
        released, so the queue stays usable and earlier completed work
        remains visible in :attr:`submission_log`.
        """
        try:
            self._validate(kernel, ndrange)
        except Exception as exc:
            self._record_failure(kernel, exc)
            raise
        accessors = [self._as_accessor(a) for a in args]
        if depends_on:
            for dep in depends_on:
                # In-order queue: dependencies are satisfied by construction,
                # but they must at least be complete events of this runtime.
                dep.wait()

        event = Event(name=kernel.name, profiling_enabled=self._profiling)
        submit_ns = self._now_ns

        try:
            kernel.run(self._device, ndrange, accessors)
        except Exception as exc:
            self._record_failure(kernel, exc)
            for acc in accessors:
                acc.release()
            raise
        for acc in accessors:
            acc.release()

        duration_s = kernel.estimate_seconds(self._device, ndrange, accessors)
        if duration_s < 0:
            error = DeviceError(
                f"kernel {kernel.name!r} reported negative duration {duration_s}"
            )
            self._record_failure(kernel, error)
            raise error
        start_ns = submit_ns
        end_ns = start_ns + max(1, int(round(duration_s * 1e9)))
        self._now_ns = end_ns
        event._record(submit_ns, start_ns, end_ns)
        self._submissions.append((kernel.name, start_ns, end_ns))
        return event

    def wait(self) -> None:
        """Block until all submitted work completes (eager: a no-op)."""

    # -- helpers -----------------------------------------------------------

    def _as_accessor(self, arg: ArgLike) -> Accessor:
        if isinstance(arg, Accessor):
            return arg
        if isinstance(arg, Buffer):
            from repro.sycl.buffer import AccessMode

            return arg.get_access(AccessMode.READ_WRITE)
        raise TypeError(
            f"kernel args must be Accessor or Buffer, got {type(arg).__name__}"
        )

    def _record_failure(self, kernel: Kernel, exc: BaseException) -> None:
        self._failed.append((kernel.name, f"{type(exc).__name__}: {exc}"))

    def _validate(self, kernel: Kernel, ndrange: NDRange) -> None:
        spec = self._device.spec
        ndrange.validate_for_device(spec.max_work_group_size)
        usage = kernel.resource_usage(self._device)
        if usage.vgprs_per_lane > spec.vgprs_per_lane:
            raise DeviceError(
                f"kernel {kernel.name!r} needs {usage.vgprs_per_lane} registers "
                f"per lane; device {self._device.name!r} provides "
                f"{spec.vgprs_per_lane} (kernel would spill)"
            )
        if usage.lds_bytes_per_group > spec.lds_bytes_per_cu:
            raise DeviceError(
                f"kernel {kernel.name!r} needs {usage.lds_bytes_per_group} B of "
                f"local memory per group; device provides {spec.lds_bytes_per_cu} B"
            )

    def __repr__(self) -> str:
        return f"Queue(device={self._device.name!r}, t={self._now_ns}ns)"
