"""Buffers and accessors: the SYCL data-management model.

A :class:`Buffer` owns a device-side copy of host data.  Kernels and the
host touch the data exclusively through :class:`Accessor` objects, whose
access mode is enforced at runtime: a ``READ`` accessor hands out a
read-only NumPy view, a ``WRITE``/``READ_WRITE`` accessor a writable one,
and the buffer records write generations so tests can assert on coherence
behaviour.  ``Buffer.to_host()`` plays the role of a host accessor /
destruction-time write-back.
"""

from __future__ import annotations

import enum
from typing import Tuple

import numpy as np

from repro.sycl.exceptions import AccessorError

__all__ = ["AccessMode", "Accessor", "Buffer"]


class AccessMode(enum.Enum):
    """Subset of ``sycl::access::mode`` used by this library."""

    READ = "read"
    WRITE = "write"
    READ_WRITE = "read_write"

    @property
    def can_read(self) -> bool:
        return self in (AccessMode.READ, AccessMode.READ_WRITE)

    @property
    def can_write(self) -> bool:
        return self in (AccessMode.WRITE, AccessMode.READ_WRITE)


class Buffer:
    """A typed, shaped device allocation initialised from host memory.

    The device copy is private: mutating the source array after
    construction does not change the buffer, matching SYCL's ownership
    semantics during a buffer's lifetime.
    """

    def __init__(self, shape: Tuple[int, ...], dtype=np.float32, *, name: str = ""):
        shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in shape):
            raise ValueError(f"buffer shape must be positive, got {shape}")
        self._data = np.zeros(shape, dtype=dtype)
        self._name = name or f"buffer{shape}"
        self._alive = True
        self._write_generation = 0

    @classmethod
    def from_array(cls, array: np.ndarray, *, name: str = "") -> "Buffer":
        """Create a buffer holding a private copy of ``array``."""
        array = np.asarray(array)
        buf = cls(array.shape, dtype=array.dtype, name=name)
        buf._data[...] = array
        return buf

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def name(self) -> str:
        return self._name

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    @property
    def size(self) -> int:
        return self._data.size

    @property
    def write_generation(self) -> int:
        """Incremented every time a writable accessor is released."""
        return self._write_generation

    def get_access(self, mode: AccessMode) -> "Accessor":
        """Request an accessor; the runtime passes these to kernels."""
        self._check_alive()
        return Accessor(self, mode)

    def to_host(self) -> np.ndarray:
        """Copy the device data back to a fresh host array."""
        self._check_alive()
        return self._data.copy()

    def destroy(self) -> None:
        """Release the device allocation; further access raises."""
        self._alive = False
        self._data = np.empty(0, dtype=self._data.dtype)

    def _check_alive(self) -> None:
        if not self._alive:
            raise AccessorError(f"buffer {self._name!r} has been destroyed")

    def __repr__(self) -> str:
        state = "" if self._alive else ", destroyed"
        return f"Buffer({self._name!r}, shape={self.shape}, dtype={self.dtype}{state})"


class Accessor:
    """A mode-checked window onto a buffer's device data."""

    def __init__(self, buffer: Buffer, mode: AccessMode):
        if not isinstance(mode, AccessMode):
            raise TypeError(f"mode must be AccessMode, got {type(mode).__name__}")
        buffer._check_alive()
        self._buffer = buffer
        self._mode = mode
        self._released = False

    @property
    def mode(self) -> AccessMode:
        return self._mode

    @property
    def buffer(self) -> Buffer:
        return self._buffer

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._buffer.shape

    def view(self) -> np.ndarray:
        """The data view a kernel operates on.

        Read-only accessors return a locked view so accidental writes fail
        loudly rather than silently corrupting the "device" memory.
        """
        self._check_usable()
        view = self._buffer._data.view()
        if not self._mode.can_write:
            view.flags.writeable = False
        return view

    def read(self) -> np.ndarray:
        """Read the full contents (requires a readable mode)."""
        self._check_usable()
        if not self._mode.can_read:
            raise AccessorError(
                f"accessor on {self._buffer.name!r} is {self._mode.value}; "
                "reading requires read or read_write access"
            )
        return self._buffer._data.copy()

    def write(self, values: np.ndarray) -> None:
        """Overwrite the full contents (requires a writable mode)."""
        self._check_usable()
        if not self._mode.can_write:
            raise AccessorError(
                f"accessor on {self._buffer.name!r} is {self._mode.value}; "
                "writing requires write or read_write access"
            )
        values = np.asarray(values, dtype=self._buffer.dtype)
        if values.shape != self._buffer.shape:
            raise AccessorError(
                f"shape mismatch writing {values.shape} into buffer "
                f"{self._buffer.shape}"
            )
        self._buffer._data[...] = values

    def release(self) -> None:
        """End this accessor's lifetime (records a write generation)."""
        if not self._released and self._mode.can_write:
            self._buffer._write_generation += 1
        self._released = True

    def _check_usable(self) -> None:
        if self._released:
            raise AccessorError("accessor used after release")
        self._buffer._check_alive()

    def __enter__(self) -> "Accessor":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"Accessor({self._buffer.name!r}, {self._mode.value})"
