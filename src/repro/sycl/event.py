"""Events with simulated profiling information.

Each kernel submission returns an :class:`Event`.  The queue stamps it with
simulated start/end times on its device timeline (nanoseconds since queue
creation), so ``profiling_duration_ns`` behaves like
``sycl::info::event_profiling::command_end - command_start`` on a real
device with profiling enabled.
"""

from __future__ import annotations

import enum
from typing import Optional

__all__ = ["Event", "EventStatus"]


class EventStatus(enum.Enum):
    """Mirrors ``sycl::info::event_command_status``."""

    SUBMITTED = "submitted"
    RUNNING = "running"
    COMPLETE = "complete"


class Event:
    """Handle for one submitted command."""

    def __init__(self, *, name: str = "", profiling_enabled: bool = False):
        self._name = name
        self._profiling_enabled = profiling_enabled
        self._status = EventStatus.SUBMITTED
        self._submit_ns: Optional[int] = None
        self._start_ns: Optional[int] = None
        self._end_ns: Optional[int] = None

    @property
    def name(self) -> str:
        return self._name

    @property
    def status(self) -> EventStatus:
        return self._status

    def wait(self) -> "Event":
        """Block until complete.

        Execution in this runtime is eager, so the event is complete as
        soon as ``submit`` returns; ``wait`` exists for API fidelity and
        to let user code be written exactly as it would be against SYCL.
        """
        if self._status is not EventStatus.COMPLETE:
            raise RuntimeError(
                f"event {self._name!r} waited on before the queue completed it"
            )
        return self

    # -- profiling ---------------------------------------------------------

    @property
    def profiling_submit_ns(self) -> int:
        return self._profiling_value(self._submit_ns)

    @property
    def profiling_start_ns(self) -> int:
        return self._profiling_value(self._start_ns)

    @property
    def profiling_end_ns(self) -> int:
        return self._profiling_value(self._end_ns)

    @property
    def profiling_duration_ns(self) -> int:
        """Simulated kernel execution time in nanoseconds."""
        return self.profiling_end_ns - self.profiling_start_ns

    @property
    def profiling_duration_s(self) -> float:
        return self.profiling_duration_ns * 1e-9

    def _profiling_value(self, value: Optional[int]) -> int:
        if not self._profiling_enabled:
            raise RuntimeError(
                "profiling was not enabled on the queue that produced this event"
            )
        if value is None:
            raise RuntimeError(f"event {self._name!r} has no timestamps yet")
        return value

    # -- runtime hooks (called by Queue) ------------------------------------

    def _record(self, submit_ns: int, start_ns: int, end_ns: int) -> None:
        if not (submit_ns <= start_ns <= end_ns):
            raise ValueError("event timestamps must be monotonically ordered")
        self._submit_ns = submit_ns
        self._start_ns = start_ns
        self._end_ns = end_ns
        self._status = EventStatus.COMPLETE

    def __repr__(self) -> str:
        return f"Event({self._name!r}, {self._status.value})"
