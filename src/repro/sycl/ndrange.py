"""Index-space types: ``Range``, ``Id`` and ``NDRange``.

These mirror ``sycl::range``, ``sycl::id`` and ``sycl::nd_range`` for 1-3
dimensions.  Unlike strict SYCL 1.2.1, the global range is allowed not to be
a multiple of the local range: the runtime rounds the global range up to
whole work-groups and kernels are expected to bounds-check, which matches
how SYCL-DNN launches its matmul kernels on ragged problem sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

from repro.sycl.exceptions import InvalidNDRangeError
from repro.utils.maths import ceil_div

__all__ = ["Id", "NDRange", "Range"]

DimsLike = Union[int, Tuple[int, ...], "Range"]


def _as_dims(value: DimsLike, what: str) -> Tuple[int, ...]:
    if isinstance(value, Range):
        return value.dims
    if isinstance(value, (int,)):
        value = (value,)
    dims = tuple(int(v) for v in value)
    if not 1 <= len(dims) <= 3:
        raise InvalidNDRangeError(f"{what} must have 1-3 dimensions, got {len(dims)}")
    if any(d <= 0 for d in dims):
        raise InvalidNDRangeError(f"{what} dimensions must be positive, got {dims}")
    return dims


@dataclass(frozen=True)
class Range:
    """An extent in 1-3 dimensions (``sycl::range``)."""

    dims: Tuple[int, ...]

    def __init__(self, *sizes: int):
        if len(sizes) == 1 and not isinstance(sizes[0], int):
            dims = _as_dims(sizes[0], "range")
        else:
            dims = _as_dims(sizes, "range")
        object.__setattr__(self, "dims", dims)

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def size(self) -> int:
        """Total number of points in the range."""
        total = 1
        for d in self.dims:
            total *= d
        return total

    def __getitem__(self, i: int) -> int:
        return self.dims[i]

    def __iter__(self) -> Iterator[int]:
        return iter(self.dims)

    def __len__(self) -> int:
        return len(self.dims)

    def __repr__(self) -> str:
        return f"Range{self.dims}"


@dataclass(frozen=True)
class Id:
    """A point in an index space (``sycl::id``)."""

    coords: Tuple[int, ...]

    def __init__(self, *coords: int):
        if len(coords) == 1 and not isinstance(coords[0], int):
            coords = tuple(int(c) for c in coords[0])
        else:
            coords = tuple(int(c) for c in coords)
        if not 1 <= len(coords) <= 3:
            raise InvalidNDRangeError(f"id must have 1-3 dimensions, got {len(coords)}")
        if any(c < 0 for c in coords):
            raise InvalidNDRangeError(f"id coordinates must be >= 0, got {coords}")
        object.__setattr__(self, "coords", coords)

    def __getitem__(self, i: int) -> int:
        return self.coords[i]

    def __iter__(self) -> Iterator[int]:
        return iter(self.coords)

    def __len__(self) -> int:
        return len(self.coords)

    def __repr__(self) -> str:
        return f"Id{self.coords}"


@dataclass(frozen=True)
class NDRange:
    """A global range plus a work-group (local) range (``sycl::nd_range``).

    ``global_range`` describes the logical problem; the *launched* range is
    ``rounded_global``, the global range rounded up to whole work-groups.
    """

    global_range: Range
    local_range: Range

    def __init__(self, global_range: DimsLike, local_range: DimsLike):
        g = Range(_as_dims(global_range, "global range"))
        l = Range(_as_dims(local_range, "local range"))
        if g.ndim != l.ndim:
            raise InvalidNDRangeError(
                f"global ({g.ndim}D) and local ({l.ndim}D) ranges must have "
                "the same dimensionality"
            )
        object.__setattr__(self, "global_range", g)
        object.__setattr__(self, "local_range", l)

    @property
    def ndim(self) -> int:
        return self.global_range.ndim

    @property
    def work_group_size(self) -> int:
        return self.local_range.size()

    @property
    def num_groups(self) -> Tuple[int, ...]:
        """Work-group count per dimension (global rounded up to local)."""
        return tuple(
            ceil_div(g, l) for g, l in zip(self.global_range, self.local_range)
        )

    @property
    def total_groups(self) -> int:
        total = 1
        for n in self.num_groups:
            total *= n
        return total

    @property
    def rounded_global(self) -> Range:
        """The launched global range: whole work-groups covering the input."""
        return Range(
            tuple(n * l for n, l in zip(self.num_groups, self.local_range))
        )

    def launched_work_items(self) -> int:
        return self.rounded_global.size()

    def validate_for_device(self, max_work_group_size: int) -> None:
        """Raise if the work-group exceeds the device limit."""
        if self.work_group_size > max_work_group_size:
            raise InvalidNDRangeError(
                f"work-group size {self.work_group_size} exceeds device "
                f"limit {max_work_group_size}"
            )

    def __repr__(self) -> str:
        return (
            f"NDRange(global={self.global_range.dims}, "
            f"local={self.local_range.dims})"
        )
