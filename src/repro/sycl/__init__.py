"""A SYCL-style runtime substrate executing kernels functionally in NumPy.

The paper deploys kernels through SYCL (queues, buffers, accessors,
``nd_range`` launches, profiling events).  Real SYCL needs an OpenCL/SPIR-V
stack and a GPU; this package reproduces the *programming model* so that the
rest of the library — kernel implementations, the benchmark harness, the
deployed selector — is written against the same abstractions the paper's
library (SYCL-DNN) uses.

Kernels execute functionally on the host (NumPy), while their *timing* comes
from an analytical device model (:mod:`repro.perfmodel`), injected through
:class:`~repro.sycl.queue.Queue`'s simulated clock.  Events therefore report
profiling durations that behave like measurements on the modelled device.

Public API mirrors SYCL 1.2.1 naming where it makes sense::

    dev = sycl.Device.r9_nano()
    q = sycl.Queue(dev, enable_profiling=True)
    a = sycl.Buffer.from_array(A)
    ev = q.submit(kernel, sycl.NDRange((1024, 1024), (16, 16)), args=(a, b, c))
    ev.wait()
    ns = ev.profiling_duration_ns
"""

from repro.sycl.device import Device, DeviceSpec, DeviceType
from repro.sycl.exceptions import (
    AccessorError,
    DeviceError,
    InvalidNDRangeError,
    SyclError,
)
from repro.sycl.ndrange import Id, NDRange, Range
from repro.sycl.buffer import AccessMode, Accessor, Buffer
from repro.sycl.event import Event, EventStatus
from repro.sycl.kernel import Kernel
from repro.sycl.queue import Queue

__all__ = [
    "AccessMode",
    "Accessor",
    "AccessorError",
    "Buffer",
    "Device",
    "DeviceError",
    "DeviceSpec",
    "DeviceType",
    "Event",
    "EventStatus",
    "Id",
    "InvalidNDRangeError",
    "Kernel",
    "NDRange",
    "Queue",
    "Range",
    "SyclError",
]
