"""Kernel protocol for the simulated runtime.

A kernel is an object with:

* ``name`` — identification for events and the compiled-kernel registry;
* ``run(device, ndrange, accessors)`` — the functional computation, given
  the accessors in submission order;
* ``estimate_seconds(device, ndrange, accessors)`` — the simulated device
  execution time.  The default charges a trivial cost; real kernels (the
  tiled matmul) delegate to :mod:`repro.perfmodel`.
* ``resource_usage(device)`` — optional (registers, LDS bytes) per
  work-item/work-group, used for device-limit validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sycl.buffer import Accessor
from repro.sycl.device import Device
from repro.sycl.ndrange import NDRange

__all__ = ["Kernel", "ResourceUsage"]


@dataclass(frozen=True)
class ResourceUsage:
    """Static resources one instance of the kernel consumes."""

    vgprs_per_lane: int = 16
    lds_bytes_per_group: int = 0

    def __post_init__(self) -> None:
        if self.vgprs_per_lane <= 0:
            raise ValueError("vgprs_per_lane must be positive")
        if self.lds_bytes_per_group < 0:
            raise ValueError("lds_bytes_per_group must be >= 0")


class Kernel:
    """Base class for functional kernels."""

    #: human-readable kernel name; subclasses should override.
    name: str = "kernel"

    def run(
        self,
        device: Device,
        ndrange: NDRange,
        accessors: Sequence[Accessor],
    ) -> None:
        """Execute the kernel functionally.  Must be overridden."""
        raise NotImplementedError

    def estimate_seconds(
        self,
        device: Device,
        ndrange: NDRange,
        accessors: Sequence[Accessor],
    ) -> float:
        """Simulated execution time on ``device``.

        The default is launch overhead plus one cycle per launched
        work-item spread over the device's lanes — a placeholder for
        kernels that do not carry a performance model.
        """
        spec = device.spec
        lanes = spec.compute_units * spec.lanes_per_cu
        cycles = ndrange.launched_work_items() / lanes
        return spec.kernel_launch_overhead_us * 1e-6 + cycles / (spec.clock_ghz * 1e9)

    def resource_usage(self, device: Device) -> ResourceUsage:
        """Static resource footprint; override for register-heavy kernels."""
        return ResourceUsage()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
