"""Exception hierarchy for the SYCL-style runtime."""

from __future__ import annotations

__all__ = [
    "AccessorError",
    "DeviceError",
    "DeviceTimeoutError",
    "InvalidNDRangeError",
    "SyclError",
]


class SyclError(RuntimeError):
    """Base class for all runtime errors raised by :mod:`repro.sycl`."""


class InvalidNDRangeError(SyclError, ValueError):
    """Raised for malformed global/local ranges (zero sizes, dim mismatch,
    local range exceeding the device work-group limit, ...)."""


class AccessorError(SyclError):
    """Raised for illegal accessor usage (writing through a read accessor,
    accessing a destroyed buffer, ...)."""


class DeviceError(SyclError):
    """Raised when a kernel requests resources the device cannot provide."""


class DeviceTimeoutError(DeviceError):
    """Raised when a submitted kernel exceeds its execution deadline.

    Subclasses :class:`DeviceError` so any handler prepared for device
    failure also covers timeouts; fault-injection harnesses raise it to
    model watchdog resets and hung launches."""
