"""Device descriptions for the simulated heterogeneous targets.

A :class:`DeviceSpec` carries the microarchitectural parameters the
performance model needs: compute-unit count, SIMD organisation, register
file and local-memory budgets, clock, DRAM bandwidth and cache sizes.  The
presets cover the paper's benchmark platform (AMD R9 Nano, a Fiji GCN3 GPU)
plus two contrasting targets used by the portability experiments: a small
embedded accelerator and an integrated desktop GPU.

Datasheet sources for the R9 Nano preset: 64 CUs x 4 SIMD16 units, 64-wide
wavefronts, 1.0 GHz boost, 8.19 TFLOP/s fp32 peak, 4 GiB HBM at 512 GB/s,
64 KiB LDS per CU, 256 KiB vector register file per SIMD (256 VGPRs per
lane), at most 10 wavefronts resident per SIMD and 256 work-items per
work-group.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["Device", "DeviceSpec", "DeviceType"]


class DeviceType(enum.Enum):
    """Coarse device class, mirroring ``sycl::info::device_type``."""

    GPU = "gpu"
    ACCELERATOR = "accelerator"
    CPU = "cpu"


@dataclass(frozen=True)
class DeviceSpec:
    """Microarchitectural parameters consumed by the performance model.

    All byte quantities are per the unit named in the field; rates are in
    the units of the suffix.
    """

    name: str
    device_type: DeviceType
    compute_units: int
    simds_per_cu: int
    #: Physical fp32 lane width of one SIMD unit (GCN: 16; a 64-wide
    #: wavefront issues over wavefront_size / physical_simd_width cycles).
    physical_simd_width: int
    wavefront_size: int
    clock_ghz: float
    fma_per_lane_per_cycle: int
    dram_bandwidth_gbps: float
    lds_bytes_per_cu: int
    vgprs_per_lane: int
    max_waves_per_simd: int
    max_work_group_size: int
    l2_bytes: int
    l1_bytes_per_cu: int
    cacheline_bytes: int
    kernel_launch_overhead_us: float
    #: Fraction of peak FLOP rate a perfectly tuned kernel can realistically
    #: sustain on this device (instruction mix, scoreboard stalls, ...).
    sustained_compute_efficiency: float = 0.85
    #: Fraction of peak DRAM bandwidth achievable with fully coalesced
    #: streaming accesses.
    sustained_bandwidth_efficiency: float = 0.80

    def __post_init__(self) -> None:
        for fld in (
            "compute_units",
            "simds_per_cu",
            "physical_simd_width",
            "wavefront_size",
            "fma_per_lane_per_cycle",
            "lds_bytes_per_cu",
            "vgprs_per_lane",
            "max_waves_per_simd",
            "max_work_group_size",
            "l2_bytes",
            "l1_bytes_per_cu",
            "cacheline_bytes",
        ):
            if getattr(self, fld) <= 0:
                raise ValueError(f"DeviceSpec.{fld} must be positive")
        for fld in ("clock_ghz", "dram_bandwidth_gbps", "kernel_launch_overhead_us"):
            if getattr(self, fld) < 0:
                raise ValueError(f"DeviceSpec.{fld} must be non-negative")
        for fld in ("sustained_compute_efficiency", "sustained_bandwidth_efficiency"):
            v = getattr(self, fld)
            if not 0.0 < v <= 1.0:
                raise ValueError(f"DeviceSpec.{fld} must be in (0, 1]")

    @property
    def lanes_per_cu(self) -> int:
        """Physical fp32 lanes issuing per cycle in one compute unit."""
        return self.simds_per_cu * self.physical_simd_width

    @property
    def wave_issue_cycles(self) -> int:
        """Cycles one SIMD needs to issue a full wavefront (GCN: 64/16 = 4)."""
        return max(1, self.wavefront_size // self.physical_simd_width)

    @property
    def peak_gflops(self) -> float:
        """Peak single-precision GFLOP/s (counting FMA as 2 flops)."""
        lanes_per_cycle = self.compute_units * self.lanes_per_cu
        return lanes_per_cycle * self.fma_per_lane_per_cycle * 2 * self.clock_ghz

    @property
    def max_threads_per_cu(self) -> int:
        """Maximum resident work-items per compute unit."""
        return self.simds_per_cu * self.max_waves_per_simd * self.wavefront_size

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """Return a copy of the spec with selected fields replaced."""
        return replace(self, **kwargs)


class Device:
    """A handle to a simulated device, carrying its spec and identity.

    Mirrors ``sycl::device``: cheap to copy, comparable, and queryable.
    """

    _PRESETS: Dict[str, DeviceSpec] = {}

    def __init__(self, spec: DeviceSpec):
        self._spec = spec

    @property
    def spec(self) -> DeviceSpec:
        return self._spec

    @property
    def name(self) -> str:
        return self._spec.name

    @property
    def device_type(self) -> DeviceType:
        return self._spec.device_type

    def is_gpu(self) -> bool:
        return self._spec.device_type is DeviceType.GPU

    def __eq__(self, other) -> bool:
        return isinstance(other, Device) and self._spec == other._spec

    def __hash__(self) -> int:
        return hash(self._spec)

    def __repr__(self) -> str:
        return f"Device({self._spec.name!r}, {self._spec.device_type.value})"

    # -- presets ---------------------------------------------------------

    @classmethod
    def register_preset(cls, key: str, spec: DeviceSpec) -> None:
        """Register a named device preset (used by perfmodel.calibration)."""
        cls._PRESETS[key] = spec

    @classmethod
    def from_preset(cls, key: str) -> "Device":
        try:
            return cls(cls._PRESETS[key])
        except KeyError:
            raise ValueError(
                f"unknown device preset {key!r}; known: {sorted(cls._PRESETS)}"
            ) from None

    @classmethod
    def available_presets(cls) -> list:
        return sorted(cls._PRESETS)

    @classmethod
    def r9_nano(cls) -> "Device":
        """The paper's benchmark platform: AMD Radeon R9 Nano (Fiji)."""
        return cls.from_preset("r9-nano")

    @classmethod
    def embedded(cls) -> "Device":
        """A small embedded accelerator (Mali-class) for portability runs."""
        return cls.from_preset("embedded-accelerator")

    @classmethod
    def desktop(cls) -> "Device":
        """A mid-range desktop GPU preset."""
        return cls.from_preset("desktop-gpu")


def _register_builtin_presets() -> None:
    Device.register_preset(
        "r9-nano",
        DeviceSpec(
            name="AMD Radeon R9 Nano (Fiji, simulated)",
            device_type=DeviceType.GPU,
            compute_units=64,
            simds_per_cu=4,
            physical_simd_width=16,
            wavefront_size=64,
            clock_ghz=1.0,
            fma_per_lane_per_cycle=1,
            dram_bandwidth_gbps=512.0,
            lds_bytes_per_cu=64 * 1024,
            vgprs_per_lane=256,
            max_waves_per_simd=10,
            max_work_group_size=256,
            l2_bytes=2 * 1024 * 1024,
            l1_bytes_per_cu=16 * 1024,
            cacheline_bytes=64,
            kernel_launch_overhead_us=8.0,
        ),
    )
    Device.register_preset(
        "embedded-accelerator",
        DeviceSpec(
            name="Embedded accelerator (Mali-class, simulated)",
            device_type=DeviceType.ACCELERATOR,
            compute_units=8,
            simds_per_cu=2,
            physical_simd_width=8,
            wavefront_size=16,
            clock_ghz=0.7,
            fma_per_lane_per_cycle=1,
            dram_bandwidth_gbps=14.9,
            lds_bytes_per_cu=32 * 1024,
            vgprs_per_lane=128,
            max_waves_per_simd=8,
            max_work_group_size=256,
            l2_bytes=512 * 1024,
            l1_bytes_per_cu=16 * 1024,
            cacheline_bytes=64,
            kernel_launch_overhead_us=25.0,
            sustained_compute_efficiency=0.75,
            sustained_bandwidth_efficiency=0.70,
        ),
    )
    Device.register_preset(
        "desktop-gpu",
        DeviceSpec(
            name="Desktop GPU (mid-range, simulated)",
            device_type=DeviceType.GPU,
            compute_units=20,
            simds_per_cu=4,
            physical_simd_width=32,
            wavefront_size=32,
            clock_ghz=1.6,
            fma_per_lane_per_cycle=1,
            dram_bandwidth_gbps=256.0,
            lds_bytes_per_cu=96 * 1024,
            vgprs_per_lane=255,
            max_waves_per_simd=12,
            max_work_group_size=1024,
            l2_bytes=4 * 1024 * 1024,
            l1_bytes_per_cu=48 * 1024,
            cacheline_bytes=128,
            kernel_launch_overhead_us=5.0,
        ),
    )


_register_builtin_presets()
